"""The multi-process worker pool behind a pooled :class:`Engine`.

Each worker is a forked process running its **own** in-process engine —
the same scheduler + coalescer loop single-process serving uses — over its
own shard of the plan cache and (with profile feedback on) its own
:class:`~repro.profile.ExecutionProfiler`.  The parent's pooled engine is
reduced to a router: it compiles, memoizes, hashes the request's
coalescing identity to a shard (:class:`~repro.service.router.ShardRouter`)
and ships the instance over that worker's shared-memory ring
(:mod:`repro.service.shm`), with a pickle-over-pipe fallback for
object-dtype semirings and payloads that outgrow the ring.

Protocol (control pipe; payload bytes ride the rings)
-----------------------------------------------------
parent -> worker::

    ("plan",     plan_id, payload, schema)         register a compiled plan
    ("semiring", pickled_semiring)                 register a late semiring
    ("submit",   task_id, plan_id, semiring, dims, descriptors, remaining, trace)
    ("psubmit",  task_id, plan_id, semiring, dims, pickled_matrices, remaining, trace)
    ("stats",)  ("profile",)  ("stop",)

worker -> parent::

    ("result",    task_id, dtype, shape, nbytes, spans)  payload in the ring
    ("result_p",  task_id, pickled_result, spans)
    ("error",     task_id, pickled_exception, spans)
    ("heartbeat", wallclock, profiler_state_or_None)
    ("stats", snapshot)  ("profile", state)  ("stopped", profiler_state)

``trace`` is ``None`` for the (overwhelmingly common) untraced request, or
``(trace_id, label)`` for a request the router's tracer sampled: the
worker rebuilds a :class:`~repro.obs.trace.TraceContext` around it, its
engine records queue/coalesce/dispatch/kernel spans into it, and the
accumulated span tuples travel back as the ``spans`` field of the result
message (``None`` when untraced).  Span timestamps are wall-clock epoch
seconds, which *are* comparable across a fork (both underlying clocks are
system-wide on Linux — see :mod:`repro.obs.clock`), so worker spans land
directly on the router trace's time axis.

``remaining`` is the request's deadline as *seconds left at send time*
(``None`` = unbounded): ``time.perf_counter()`` epochs differ across
processes, so an absolute deadline cannot travel — the worker re-anchors
it against its own clock on receipt.  An already-expired task is answered
with :class:`~repro.exceptions.DeadlineExceededError` without executing,
both router-side at dispatch and worker-side at receipt (the check runs
only after every announced ring byte is drained; the framing discipline
outranks the deadline).

Because each ring has one producer and one consumer and the announcing
pipe message is sent only *after* the ring write, the pipe's FIFO order is
the framing: the receiver reads exactly the announced byte count.  The
corollary is that the receiver must consume exactly the announced bytes
even when it cannot *use* them — a submit whose descriptors fail to
decode drains the payload before replying with the error, because a
skipped byte would desynchronize every later read on the ring.

Semirings are resolved by name in the worker against the registry it
inherited at fork; a semiring registered in the parent *after* the pool
started is shipped once per worker as a ``("semiring", ...)`` message
before the first submit that needs it (vectorized kernel factories
registered post-fork do not travel — such a semiring executes on the
generic object-dtype fold in the workers).

Fork safety
-----------
Workers are started with the ``fork`` method (required; the instance
arrays and registries must be inherited, not re-imported).  The first
thing a worker does is re-initialize the module-level locks a fork may
have captured in a held state (the compiler plan-cache lock, the profile
lock) and clear the inherited plan cache — giving each worker the private
plan-cache shard the sharded design wants anyway.

Crash rescue and self-healing
-----------------------------
A worker that dies (segfault, OOM-kill, ``kill -9``) surfaces as EOF on
its pipe.  The parent respawns the shard and resubmits each in-flight
request **once** to a live worker; a request that has already been rescued
fails its own future with :class:`~repro.exceptions.WorkerCrashError`
instead of retrying forever.  Only futures in flight on the dead worker
are touched.

*Hung* workers (stuck kernel, wedged interpreter) never produce an EOF on
their own, so each worker also sends a heartbeat over its control pipe
every ``policy.heartbeat_interval`` seconds, and a router-side
:class:`~repro.service.health.Watchdog` force-kills a worker whose last
heartbeat is older than ``policy.heartbeat_timeout`` — or that is still
chewing on a task ``policy.hung_task_grace`` seconds past the task's
deadline.  The kill turns the hang into the pipe-EOF the rescue machinery
already heals, so dead and hung workers share one recovery path.

A plan whose tasks keep *coinciding* with worker deaths is treated as the
probable cause: each death strikes every orphaned task's plan on a
:class:`~repro.service.health.CircuitBreaker`, and a plan that accumulates
``policy.quarantine_strikes`` strikes is quarantined — its requests run on
the router's sandboxed single-instance lane (one disposable forked process
per request, so a poison plan can only kill its own sandbox) or, with
``policy.quarantine_execute=False``, resolve immediately with
:class:`~repro.exceptions.PlanQuarantinedError`.  After
``policy.quarantine_reset`` seconds one probe request is let back into the
pool; surviving closes the breaker, dying re-opens it.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    PlanQuarantinedError,
    WorkerCrashError,
)
from repro.service import faults
from repro.service.health import CircuitBreaker, Watchdog, backoff_delays
from repro.service.router import ShardRouter
from repro.service.shm import ShmRing

__all__ = ["WorkerCrashError", "WorkerPool"]


def _reinit_module_locks() -> None:
    """Give the forked worker fresh module locks and a private plan cache.

    A thread of the parent may hold these locks at the instant of the
    fork; the child would then deadlock on first use.  Re-creating them
    (and clearing the inherited plan cache, which doubles as giving the
    worker its own shard) makes the child self-consistent.
    """
    from repro.matlang import compiler
    from repro import profile as profile_module

    compiler._PLAN_CACHE_LOCK = threading.RLock()
    compiler._PLAN_CACHE.clear()
    profile_module._LOCK = threading.Lock()


def _discard_ring_bytes(ring: ShmRing, nbytes: int) -> None:
    """Consume and drop ``nbytes`` announced bytes from ``ring``.

    The error path of a submit whose payload cannot be decoded: the
    producer already wrote (and accounted) these bytes, so they must be
    read exactly once even though nobody wants them.
    """
    while nbytes > 0:
        span = min(nbytes, ring.capacity)
        ring.read(span)
        nbytes -= span


def _rebuild_instance(schema, dimensions, semiring, matrices):
    """Reassemble an :class:`Instance` without re-validating or re-lifting.

    The parent validated the instance at submission; the worker receives
    arrays that are byte-for-byte the validated ones, so running
    ``__post_init__`` again would only re-copy every matrix.
    """
    from repro.matlang.instance import Instance

    instance = Instance.__new__(Instance)
    instance.schema = schema
    instance.dimensions = dict(dimensions)
    instance.matrices = matrices
    instance.semiring = semiring
    return instance


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
#: Heartbeats between profiler-state piggybacks: frequent enough that a
#: long-lived pool refits its cost profile mid-run (the parent merges each
#: shipped state), sparse enough that draining the reservoirs stays noise.
_PROFILE_EVERY_BEATS = 5


def _worker_main(
    index: int,
    connection,
    request_ring: ShmRing,
    result_ring: ShmRing,
    policy,
    functions,
    backend,
    options,
    profile_feedback: bool,
) -> None:
    from repro.semiring.registry import get_semiring
    from repro.service.engine import Engine

    _reinit_module_locks()
    engine = Engine(
        policy=policy,
        functions=functions,
        backend=backend,
        options=options,
        profile_feedback=profile_feedback,
    )
    plans: Dict[int, Any] = {}
    schemas: Dict[int, Any] = {}
    send_lock = threading.Lock()
    stop_heartbeat = threading.Event()

    def ship_error(task_id: int, error: BaseException, spans=None) -> None:
        try:
            payload = pickle.dumps(error)
        except Exception:
            payload = pickle.dumps(RuntimeError(repr(error)))
        with send_lock:
            connection.send(("error", task_id, payload, spans))

    def ship(task_id: int, future, trace=None) -> None:
        # Runs as a done callback (exceptions would be swallowed), so every
        # failure mode of shipping itself — an unpicklable result, an
        # injected pickle fault — degrades to an ``error`` message rather
        # than a silently unresolved parent-side future.
        spans = None if trace is None else trace.export_state()
        try:
            error = future.exception()
            if error is not None:
                ship_error(task_id, error, spans)
                return
            if faults.ACTIVE is not None:
                faults.ACTIVE.fire("worker.ship", worker=index, task=task_id)
            result = np.ascontiguousarray(future.result())
            if result.dtype != object and result.nbytes <= result_ring.capacity:
                with send_lock:
                    if result_ring.write([result.data], timeout=2.0):
                        connection.send(
                            (
                                "result",
                                task_id,
                                result.dtype.str,
                                result.shape,
                                result.nbytes,
                                spans,
                            )
                        )
                        return
                    connection.send(("result_p", task_id, pickle.dumps(result), spans))
                return
            with send_lock:
                connection.send(("result_p", task_id, pickle.dumps(result), spans))
        except Exception as error:
            try:
                ship_error(task_id, error, spans)
            except Exception:
                pass  # pipe gone: the parent's EOF handling takes over

    def heartbeat_loop() -> None:
        interval = policy.heartbeat_interval if policy is not None else 0.25
        beats = 0
        while not stop_heartbeat.wait(interval):
            beats += 1
            if faults.ACTIVE is not None and faults.ACTIVE.deny(
                "worker.heartbeat", worker=index
            ):
                continue  # injected silence: the watchdog should kill us
            state = None
            if profile_feedback and beats % _PROFILE_EVERY_BEATS == 0:
                # ``state()`` drains the reservoirs, so samples shipped on a
                # heartbeat are never double-counted by a later flush.
                try:
                    state = engine._profiler.state()
                except Exception:
                    state = None
            try:
                with send_lock:
                    connection.send(("heartbeat", time.time(), state))
            except Exception:
                return  # parent went away; the main loop will exit too

    threading.Thread(
        target=heartbeat_loop, name=f"repro-worker-{index}-hb", daemon=True
    ).start()

    def handle_submit(message, pickled: bool) -> None:
        _, task_id, plan_id, semiring_name, dimensions, payload, remaining, trace_wire = (
            message
        )
        trace_context = None
        if trace_wire is not None:
            from repro.obs.trace import TraceContext

            trace_context = TraceContext(trace_wire[0], trace_wire[1])
        failure: Optional[BaseException] = None
        matrices: Dict[str, Any] = {}
        if pickled:
            try:
                matrices = pickle.loads(payload)
            except Exception as error:
                failure = error
        else:
            # The parent wrote (and accounted) every announced byte before
            # sending this message, so every descriptor's bytes must be
            # consumed here exactly once — even after a decode failure —
            # or the ring head desynchronizes and every later shm submit
            # on this worker silently reads the wrong bytes.
            for name, dtype_str, shape, nbytes in payload:
                array = None
                if failure is None:
                    try:
                        candidate = np.empty(shape, dtype=np.dtype(dtype_str))
                        if candidate.nbytes == nbytes:
                            array = candidate
                        else:
                            failure = ValueError(
                                f"descriptor for {name!r} announces {nbytes} "
                                f"bytes but {dtype_str}{shape} holds "
                                f"{candidate.nbytes}"
                            )
                    except Exception as error:
                        failure = error
                try:
                    if array is not None:
                        request_ring.read_into(
                            array.reshape(-1).view(np.uint8).data
                        )
                        matrices[name] = array
                    else:
                        _discard_ring_bytes(request_ring, nbytes)
                except Exception as error:  # the ring itself failed
                    if failure is None:
                        failure = error
        if failure is None and remaining is not None and remaining <= 0:
            # Expired in transit (or rescued onto this worker too late):
            # answer with the typed error without executing — and without
            # visiting the worker.task fault site, so a rescued task cannot
            # be hit twice by one injected crash schedule.
            ship_error(
                task_id,
                DeadlineExceededError(
                    "the request's deadline expired before worker execution"
                ),
            )
            return
        if failure is None:
            # Fallible lookups only after the ring is fully drained.
            try:
                plan = plans[plan_id]
                semiring = get_semiring(semiring_name)
                instance = _rebuild_instance(
                    schemas[plan_id], dimensions, semiring, matrices
                )
            except Exception as error:
                failure = error
        if failure is not None:
            ship_error(task_id, failure)
            return
        if faults.ACTIVE is not None:
            # The canonical chaos site: ``crash`` simulates a segfaulting
            # kernel, ``sleep`` a stuck one, ``raise`` a poisoned plan.  A
            # raised poison fails the *task* (shipped as its typed error);
            # only ``crash`` takes the whole worker down.
            try:
                faults.ACTIVE.fire("worker.task", worker=index, task=task_id)
            except Exception as error:
                ship_error(task_id, error)
                return
        future = engine.submit_compiled(
            plan, instance, deadline=remaining, trace=trace_context
        )
        future.add_done_callback(
            lambda finished, tid=task_id, ctx=trace_context: ship(tid, finished, ctx)
        )

    profiler_state: Callable[[], Any] = lambda: (
        engine._profiler.state() if engine._profiler is not None else None
    )

    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break  # parent went away: exit without unlinking anything
        kind = message[0]
        if kind == "submit":
            handle_submit(message, pickled=False)
        elif kind == "psubmit":
            handle_submit(message, pickled=True)
        elif kind == "plan":
            from repro.matlang.ir import deserialize_plan

            _, plan_id, payload, schema = message
            plans[plan_id] = deserialize_plan(payload)
            schemas[plan_id] = schema
        elif kind == "semiring":
            # A semiring registered in the parent after this worker forked.
            from repro.semiring.registry import register_semiring

            try:
                register_semiring(pickle.loads(message[1]), overwrite=True)
            except Exception:
                pass  # the submit needing it fails with a clear SemiringError
        elif kind == "stats":
            with send_lock:
                connection.send(("stats", engine.stats()))
        elif kind == "profile":
            with send_lock:
                connection.send(("profile", profiler_state()))
        elif kind == "stop":
            stop_heartbeat.set()
            engine.shutdown(wait=True)
            with send_lock:
                connection.send(("stopped", profiler_state()))
            break
    stop_heartbeat.set()
    request_ring.close()
    result_ring.close()
    connection.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Task:
    """One in-flight pooled request (parent-side bookkeeping)."""

    __slots__ = (
        "task_id",
        "plan",
        "plan_id",
        "instance",
        "future",
        "memo_key",
        "submitted_at",
        "deadline_at",
        "cost",
        "rescued",
        "probe",
        "trace",
        "sent_at",
    )

    def __init__(
        self,
        task_id,
        plan,
        instance,
        future,
        memo_key,
        submitted_at,
        deadline_at=None,
        cost=0.0,
        trace=None,
    ):
        self.task_id = task_id
        self.plan = plan
        #: Wire plan id; stamped by the first dispatch (breaker key).
        self.plan_id: Optional[int] = None
        self.instance = instance
        self.future = future
        self.memo_key = memo_key
        self.submitted_at = submitted_at
        #: Absolute ``perf_counter`` deadline in the *router's* clock.
        self.deadline_at = deadline_at
        #: Admission-control cost the engine retires at delivery.
        self.cost = cost
        self.rescued = False
        #: Whether this task is a half-open circuit-breaker probe.
        self.probe = False
        #: Router-side :class:`~repro.obs.trace.TraceContext` when sampled.
        self.trace = trace
        #: ``perf_counter`` at the last successful send (the "worker" span
        #: of a traced task runs from here to its reply).
        self.sent_at = 0.0

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (the wire representation)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.perf_counter()


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[Any] = None
        self.connection: Optional[Any] = None
        self.request_ring: Optional[ShmRing] = None
        self.result_ring: Optional[ShmRing] = None
        self.send_lock = threading.Lock()
        self.control_lock = threading.Lock()
        self.replies: "queue.Queue" = queue.Queue()
        self.registered: set = set()
        #: Semiring names the worker is known to resolve: the registry
        #: snapshot it inherited at fork, plus any shipped since.
        self.semirings: set = set()
        self.inflight: Dict[int, _Task] = {}
        self.receiver: Optional[threading.Thread] = None
        self.alive = False
        self.stopping = False
        #: ``time.monotonic()`` of the last heartbeat (or the spawn).
        self.last_heartbeat = 0.0


def _sandbox_main(connection, plan, instance, functions) -> None:
    """Entry point of a disposable quarantine sandbox (one request).

    Runs the plan exactly the way a worker's per-instance fallback would —
    per-op physical planning, single-instance execution — but in a process
    whose death cannot take any in-flight neighbour with it.  Deliberately
    does **not** contain the ``worker.task`` fault site: the sandbox exists
    to get a *correct answer* out of a plan whose pool executions keep
    dying, and the chaos suite relies on that asymmetry.
    """
    _reinit_module_locks()
    try:
        from repro.matlang.functions import default_registry
        from repro.matlang.ir import execute_plan
        from repro.semiring.backends import plan_physical

        physical = plan_physical(plan, instance, None)
        value = execute_plan(
            physical.plan,
            physical.backend,
            instance,
            functions if functions is not None else default_registry(),
            backends=physical.backends,
        )
        connection.send(("ok", np.asarray(physical.result_backend.to_dense(value))))
    except BaseException as error:
        try:
            connection.send(("error", error))
        except Exception:
            try:
                connection.send(("error", RuntimeError(repr(error))))
            except Exception:
                pass
    finally:
        connection.close()


class _QuarantineLane:
    """Sandboxed single-instance execution for quarantined plans.

    One lazily-started daemon thread drains quarantined tasks in order;
    each runs in a fresh forked sandbox (arguments travel in fork-inherited
    memory, so nothing needs pickling on the way in) bounded by the task's
    deadline or :attr:`SANDBOX_TIMEOUT`.  A sandbox that crashes or times
    out resolves its task with
    :class:`~repro.exceptions.PlanQuarantinedError`.
    """

    #: Wall-clock cap for one sandboxed execution without a deadline.
    SANDBOX_TIMEOUT = 60.0

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._stopped = False

    def submit(self, task: _Task) -> None:
        with self._lock:
            if self._stopped:
                self._pool._deliver(
                    task,
                    None,
                    RuntimeError("the worker pool shut down mid-request"),
                )
                return
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-quarantine", daemon=True
                )
                self._thread.start()
        self._queue.put(task)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain queued tasks, then stop; fails whatever could not run."""
        with self._lock:
            self._stopped = True
            thread = self._thread
        if thread is None:
            return
        self._queue.put(None)
        thread.join(timeout=timeout)
        while True:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                return
            if task is not None:
                self._pool._deliver(
                    task,
                    None,
                    RuntimeError("the worker pool shut down mid-request"),
                )

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            try:
                result, error = self._execute(task)
            except Exception as surprise:  # pragma: no cover - last resort
                result, error = None, surprise
            self._pool._deliver(task, result, error)

    def _execute(self, task: _Task):
        if task.deadline_at is not None and time.perf_counter() >= task.deadline_at:
            return None, DeadlineExceededError(
                "the request's deadline expired before dispatch"
            )
        with self._pool._fork_lock:
            receiver, sender = self._pool._context.Pipe(duplex=False)
            process = self._pool._context.Process(
                target=_sandbox_main,
                args=(sender, task.plan, task.instance, self._pool._functions),
                name="repro-quarantine-sandbox",
                daemon=True,
            )
            process.start()
            sender.close()
        if task.deadline_at is None:
            timeout = self.SANDBOX_TIMEOUT
        else:
            timeout = max(0.05, task.deadline_at - time.perf_counter())
        verdict = None
        try:
            if receiver.poll(timeout):
                verdict = receiver.recv()
        except (EOFError, OSError):
            verdict = None
        finally:
            try:
                receiver.close()
            except Exception:
                pass
            if process.is_alive():
                process.kill()
            process.join(timeout=5.0)
        if verdict is None:
            return None, PlanQuarantinedError(
                "the quarantined plan's sandboxed execution crashed or timed out"
            )
        kind, payload = verdict
        if kind == "ok":
            return payload, None
        return None, payload


class WorkerPool:
    """N forked workers plus the routing/rescue logic binding them.

    ``deliver(task, result, error)`` is the engine's completion hook: the
    pool calls it exactly once per submitted task, from a parent-side
    receiver thread.
    """

    #: Rescue attempts per request after a worker crash.
    MAX_RESCUES = 1

    def __init__(
        self,
        workers: int,
        deliver: Callable[[_Task, Any, Optional[BaseException]], None],
        policy=None,
        functions=None,
        backend=None,
        options=None,
        profile_feedback: bool = False,
        ring_capacity: Optional[int] = None,
        stats=None,
        on_profile_state: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            raise RuntimeError(
                "the worker pool requires the 'fork' start method"
            ) from None
        self.workers = workers
        self.router = ShardRouter(workers)
        self._deliver = deliver
        self._policy = policy
        self._functions = functions
        self._backend = backend
        self._options = options
        self._profile_feedback = profile_feedback
        self._ring_capacity = ring_capacity
        self._stats = stats
        self._on_profile_state = on_profile_state
        self._lock = threading.Lock()
        # Serializes every fork in the pool (worker spawns, sandbox runs)
        # against the instant where a freshly created pipe's child end is
        # still open in the parent: a concurrent fork in that window
        # inherits the fd, and a worker whose child end leaked into a
        # sibling never EOFs the parent when it dies — its receive loop
        # blocks forever and its in-flight tasks are never rescued.
        self._fork_lock = threading.Lock()
        self._closed = False
        self._task_counter = 0
        self._plan_counter = 0
        #: ``id(plan) -> (pinned plan, wire plan id, payload, schema)``.
        self._plans: Dict[int, Tuple[Any, int, bytes, Any]] = {}

        def knob(name: str, default):
            return getattr(policy, name, default) if policy is not None else default

        self._dispatch_retries = knob("dispatch_retries", 3)
        self._retry_backoff = knob("retry_backoff", 0.01)
        self._heartbeat_timeout = knob("heartbeat_timeout", 5.0)
        self._hung_task_grace = knob("hung_task_grace", 2.0)
        self._quarantine_execute = knob("quarantine_execute", True)
        self.breaker = CircuitBreaker(
            strikes=knob("quarantine_strikes", 3),
            reset_after=knob("quarantine_reset", 30.0),
        )
        self._lane = _QuarantineLane(self)
        self._handles: List[_WorkerHandle] = []
        for index in range(workers):
            handle = _WorkerHandle(index)
            self._spawn(handle)
            self._handles.append(handle)
        self._watchdog = Watchdog(
            self._watchdog_scan,
            interval=knob("heartbeat_interval", 0.25),
            name="repro-pool-watchdog",
        ).start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle, respawn: bool = False) -> None:
        from repro.semiring.registry import available_semirings

        if respawn and self._stats is not None:
            self._stats.record_respawn()

        with self._fork_lock:
            capacity = self._ring_capacity
            rings = (
                ShmRing() if capacity is None else ShmRing(capacity),
                ShmRing() if capacity is None else ShmRing(capacity),
            )
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_worker_main,
                args=(
                    handle.index,
                    child_conn,
                    rings[0],
                    rings[1],
                    self._policy,
                    self._functions,
                    self._backend,
                    self._options,
                    self._profile_feedback,
                ),
                name=f"repro-worker-{handle.index}",
                daemon=True,
            )
            # Snapshot the registry *before* the fork: every name in it is
            # inherited by the child, anything registered later must be
            # shipped.
            known_semirings = set(available_semirings())
            process.start()
            child_conn.close()
        handle.process = process
        handle.connection = parent_conn
        handle.request_ring, handle.result_ring = rings
        handle.registered = set()
        handle.semirings = known_semirings
        handle.inflight = {}
        handle.replies = queue.Queue()
        handle.alive = True
        handle.stopping = False
        handle.last_heartbeat = time.monotonic()
        handle.receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle,),
            name=f"repro-pool-recv-{handle.index}",
            daemon=True,
        )
        handle.receiver.start()

    def _receive_loop(self, handle: _WorkerHandle) -> None:
        connection = handle.connection
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError, TypeError):
                # TypeError: teardown's close() nulls the descriptor under
                # a thread already inside recv().  `expect` pins the report
                # to the incarnation this thread was started for: if the
                # watchdog already reaped the death and respawned the
                # worker, a late EOF from the old pipe must not take down
                # the healthy replacement.
                if not handle.stopping:
                    self._on_worker_death(handle, expect=connection)
                return
            kind = message[0]
            if kind == "result":
                _, task_id, dtype_str, shape, nbytes, spans = message
                array = np.empty(shape, dtype=np.dtype(dtype_str))
                try:
                    handle.result_ring.read_into(
                        array.reshape(-1).view(np.uint8).data
                    )
                except Exception as error:
                    self._complete(handle, task_id, None, error, spans)
                    continue
                self._complete(handle, task_id, array, None, spans)
            elif kind == "result_p":
                _, task_id, payload, spans = message
                try:
                    result = pickle.loads(payload)
                except Exception as error:
                    self._complete(handle, task_id, None, error, spans)
                    continue
                self._complete(handle, task_id, result, None, spans)
            elif kind == "error":
                _, task_id, payload, spans = message
                try:
                    error = pickle.loads(payload)
                except Exception:
                    error = RuntimeError("worker reported an undecodable error")
                self._complete(handle, task_id, None, error, spans)
            elif kind == "heartbeat":
                handle.last_heartbeat = time.monotonic()
                state = message[2]
                if state and self._on_profile_state is not None:
                    try:
                        self._on_profile_state(state)
                    except Exception:
                        pass  # profiler merge is best-effort telemetry
            else:  # stats / profile / stopped control replies
                handle.replies.put(message)
                if kind == "stopped":
                    return

    def _complete(self, handle, task_id, result, error, spans=None) -> None:
        with self._lock:
            task = handle.inflight.pop(task_id, None)
        if task is None:
            return  # already rescued onto another worker
        if task.trace is not None:
            # The worker span brackets the whole remote leg (send to reply);
            # the shipped worker-side spans nest inside it on the same
            # wall-clock axis (system-wide clocks survive the fork).
            if spans:
                task.trace.ingest_state(spans)
            if task.sent_at:
                task.trace.add_perf(
                    "worker", "serving", task.sent_at,
                    time.perf_counter() - task.sent_at,
                    {"worker": handle.index},
                )
        if task.plan_id is not None:
            # Any reply at all proves the worker survived this plan's task —
            # enough to retire breaker evidence (a half-open probe's success
            # closes the breaker here).
            self.breaker.record_success(task.plan_id)
            if task.probe and self._stats is not None:
                self._stats.set_quarantine_open(self.breaker.open_count())
        self._deliver(task, result, error)

    def _on_worker_death(self, handle: _WorkerHandle, expect=None) -> None:
        with self._lock:
            if not handle.alive:
                return
            if expect is not None and handle.connection is not expect:
                return  # stale observer: that incarnation was already healed
            handle.alive = False
            orphaned = list(handle.inflight.values())
            handle.inflight = {}
            closed = self._closed
            exhausted: List[_Task] = []
            rescuable: List[_Task] = []
            for task in orphaned:
                if task.rescued or closed:
                    exhausted.append(task)
                else:
                    # Claimed under the pool lock so a submit thread whose
                    # _send_task to this worker is failing concurrently can
                    # see ownership changed hands (see _dispatch's cleanup).
                    task.rescued = True
                    rescuable.append(task)
        # Each orphaned *plan* takes one strike per death — counting deaths,
        # not tasks, so a single crash with a deep in-flight queue cannot
        # quarantine a plan by itself.  Struck *before* the rescues are
        # rerouted, so a plan that just earned quarantine sends its rescued
        # tasks to the sandbox instead of crash-looping a second worker.
        tripped = 0
        for plan_id in {
            task.plan_id for task in orphaned if task.plan_id is not None
        }:
            if self.breaker.strike(plan_id):
                tripped += 1
        if self._stats is not None:
            for _ in range(tripped):
                self._stats.record_quarantine_trip()
            self._stats.set_quarantine_open(self.breaker.open_count())
        # The send lock serializes the swap against any _send_task that
        # already passed its liveness check: without it, a submit thread can
        # interleave its ring write and pipe send across the teardown/spawn
        # boundary — leaving announced-to-nobody bytes in the *fresh* ring,
        # after which every later shm submit on this worker silently decodes
        # shifted payloads.  (The in-flight sender then targets the old ring
        # and pipe wholesale; both die with the old worker, harmlessly.)
        with handle.send_lock:
            self._teardown_handle(handle)
            # Re-read _closed *after* teardown: a shutdown that started
            # since this death was claimed may already be past this handle
            # in its stop loop, and a worker (and its rings) spawned now
            # would never be torn down.  If shutdown instead flips _closed
            # right after this check, it has yet to visit this handle — it
            # will block on send_lock until the spawn finishes, then stop
            # and tear down the replacement normally.
            with self._lock:
                closed = closed or self._closed
            if not closed:
                try:
                    self._spawn(handle, respawn=True)
                except Exception:
                    pass
        crash = WorkerCrashError(
            f"worker {handle.index} (shard {handle.index}) died unexpectedly"
        )
        for task in exhausted:
            # At-most-once rescue caps pool re-dispatch, but a twice-orphaned
            # task whose plan is now quarantined still has somewhere safe to
            # go: the sandbox is a different execution vehicle, so sending it
            # there cannot crash-loop a third worker.
            if task.plan_id is not None and self.breaker.is_open(task.plan_id):
                try:
                    self._quarantine(task)
                except Exception as error:
                    self._deliver(task, None, error)
            else:
                self._deliver(task, None, crash)
        for task in rescuable:
            try:
                self._route(task)
            except Exception as error:
                self._deliver(task, None, error)

    def _teardown_handle(self, handle: _WorkerHandle) -> None:
        try:
            handle.connection.close()
        except Exception:
            pass
        process = handle.process
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5.0)
        for ring in (handle.request_ring, handle.result_ring):
            if ring is not None:
                ring.destroy()
        handle.request_ring = handle.result_ring = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        plan,
        instance,
        future,
        memo_key,
        submitted_at,
        deadline_at=None,
        cost=0.0,
        trace=None,
    ) -> Optional[_Task]:
        """Route one compiled request to its shard; ``None`` when closed."""
        with self._lock:
            if self._closed:
                return None
            self._task_counter += 1
            task = _Task(
                self._task_counter,
                plan,
                instance,
                future,
                memo_key,
                submitted_at,
                deadline_at,
                cost,
                trace,
            )
        task.plan_id = self._plan_record(plan)[0]
        self._route(task)
        return task

    def _route(self, task: _Task) -> None:
        """Send one task through the circuit breaker to pool or quarantine."""
        verdict = self.breaker.admit(task.plan_id)
        if verdict == "open":
            self._quarantine(task)
            return
        if verdict == "probe":
            task.probe = True
        self._dispatch(task)

    def _quarantine(self, task: _Task) -> None:
        """Answer one task on the quarantine path (sandbox or typed error)."""
        if self._stats is not None:
            self._stats.record_quarantined()
        if self._quarantine_execute:
            self._lane.submit(task)
        else:
            self._deliver(
                task,
                None,
                PlanQuarantinedError(
                    "the plan is quarantined after repeated worker crashes"
                ),
            )

    def _plan_record(self, plan) -> Tuple[int, bytes, Any]:
        from repro.matlang.ir import serialize_plan

        with self._lock:
            record = self._plans.get(id(plan))
            if record is not None and record[0] is plan:
                return record[1], record[2], record[3]
        payload = serialize_plan(plan)
        with self._lock:
            record = self._plans.get(id(plan))
            if record is not None and record[0] is plan:
                return record[1], record[2], record[3]
            self._plan_counter += 1
            # The schema rides along once per plan: every instance of the
            # plan conforms to it, so per-submit traffic carries dims only.
            self._plans[id(plan)] = (plan, self._plan_counter, payload, None)
            return self._plan_counter, payload, None

    def _dispatch(self, task: _Task) -> None:
        """Dispatch with bounded-backoff retries around transient failures.

        A send can fail because its worker died mid-route; the respawn is
        usually up within the first backoff step, so retrying locally is
        far cheaper than burning the task's one crash rescue.  The retry
        budget exhausted, the failure surfaces as
        :class:`~repro.exceptions.WorkerCrashError`.
        """
        if task.deadline_at is not None and time.perf_counter() >= task.deadline_at:
            # O(µs) shed: nobody is waiting for this result anymore (also
            # the fate of a rescued task whose deadline lapsed while its
            # worker hung — the watchdog test's deterministic outcome).
            self._deliver(
                task,
                None,
                DeadlineExceededError(
                    "the request's deadline expired before dispatch"
                ),
            )
            return
        delays = backoff_delays(self._dispatch_retries, base=self._retry_backoff)
        while True:
            try:
                self._dispatch_once(task)
                return
            except Exception as error:
                delay = next(delays, None)
                if delay is None or self._closed:
                    if isinstance(error, WorkerCrashError):
                        raise
                    raise WorkerCrashError(
                        f"dispatch failed after {self._dispatch_retries} "
                        f"retries: {type(error).__name__}: {error}"
                    ) from error
                if self._stats is not None:
                    self._stats.record_dispatch_retry()
                time.sleep(delay)

    def _dispatch_once(self, task: _Task) -> None:
        plan_id, payload, _ = self._plan_record(task.plan)
        instance = task.instance
        shard = self.router.shard_for(
            plan_id, instance.semiring.name, instance.dimensions
        )
        handle = self._handles[shard]
        with self._lock:
            if not handle.alive:
                alive = [h.index for h in self._handles if h.alive]
                if not alive:
                    raise WorkerCrashError("no live workers")
                # Rendezvous selection keeps the stand-in stable for this
                # coalescing identity while the home shard is down.
                stand_in = self.router.shard_among(
                    plan_id, instance.semiring.name, instance.dimensions, alive
                )
                handle = self._handles[stand_in]
            handle.inflight[task.task_id] = task
            was_rescued = task.rescued
        try:
            self._send_task(handle, task, plan_id, payload)
        except Exception:
            with self._lock:
                if task.rescued == was_rescued:
                    handle.inflight.pop(task.task_id, None)
                    owned = True
                else:
                    # The worker died mid-send and _on_worker_death already
                    # orphaned this task and claimed it for rescue; the
                    # rescue now owns delivery, so the send failure must
                    # neither fail the future nor pop the rescue's fresh
                    # registration (which reuses the same task_id key).
                    owned = False
            if owned:
                raise

    def _send_task(self, handle, task, plan_id, payload) -> None:
        ship_started = time.perf_counter()
        trace_wire = (
            None if task.trace is None else (task.trace.trace_id, task.trace.label)
        )
        instance = task.instance
        matrices = instance.matrices
        names = sorted(matrices)
        arrays = [np.ascontiguousarray(matrices[name]) for name in names]
        shippable = all(array.dtype != object for array in arrays)
        total = sum(array.nbytes for array in arrays)
        with handle.send_lock:
            if not handle.alive:
                raise WorkerCrashError(f"worker {handle.index} is down")
            if plan_id not in handle.registered:
                handle.connection.send(
                    ("plan", plan_id, payload, instance.schema)
                )
                handle.registered.add(plan_id)
            if instance.semiring.name not in handle.semirings:
                # Registered in the parent after this worker forked: ship
                # the object so the worker's by-name lookup can resolve it.
                # The lazily cached kernel backend is stripped (the worker
                # re-resolves it); an unpicklable semiring fails here, at
                # submit time, instead of as a worker-side name miss.
                clone = copy.copy(instance.semiring)
                clone.__dict__.pop("_kernels", None)
                clone.__dict__.pop("_kernels_version", None)
                handle.connection.send(("semiring", pickle.dumps(clone)))
                handle.semirings.add(instance.semiring.name)
            # Sampled at send time: the wire carries seconds-left, which the
            # worker re-anchors against its own perf_counter epoch.
            remaining = task.remaining()
            if (
                shippable
                and total <= handle.request_ring.capacity
                and handle.request_ring.write(
                    [array.data for array in arrays],
                    timeout=2.0,
                    # A dead consumer never frees ring space: bail out of
                    # the backpressure wait the moment the death is known
                    # instead of serializing every sender behind the full
                    # write timeout.
                    abort=lambda: not handle.alive,
                )
            ):
                descriptors = tuple(
                    (name, array.dtype.str, array.shape, array.nbytes)
                    for name, array in zip(names, arrays)
                )
                handle.connection.send(
                    (
                        "submit",
                        task.task_id,
                        plan_id,
                        instance.semiring.name,
                        dict(instance.dimensions),
                        descriptors,
                        remaining,
                        trace_wire,
                    )
                )
                transport = "shm"
            else:
                if not handle.alive:
                    # The ring wait aborted because the worker died under
                    # us; fail fast so the rescue path takes over rather
                    # than pickling megabytes into a pipe nobody reads.
                    raise WorkerCrashError(f"worker {handle.index} is down")
                handle.connection.send(
                    (
                        "psubmit",
                        task.task_id,
                        plan_id,
                        instance.semiring.name,
                        dict(instance.dimensions),
                        pickle.dumps({name: matrices[name] for name in names}),
                        remaining,
                        trace_wire,
                    )
                )
                transport = "pickle"
        if task.trace is not None:
            sent_at = time.perf_counter()
            task.sent_at = sent_at
            task.trace.add_perf(
                "ship", "serving", ship_started, sent_at - ship_started,
                {"worker": handle.index, "transport": transport, "bytes": total},
            )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _control(self, handle: _WorkerHandle, request: Tuple, timeout: float):
        with handle.control_lock:
            with handle.send_lock:
                if not handle.alive:
                    return None
                handle.connection.send(request)
            try:
                return handle.replies.get(timeout=timeout)
            except queue.Empty:
                return None

    def worker_stats(self, timeout: float = 5.0) -> List[Any]:
        """Per-worker engine snapshots (``None`` for unreachable workers)."""
        snapshots = []
        for handle in self._handles:
            reply = self._control(handle, ("stats",), timeout)
            snapshots.append(reply[1] if reply else None)
        return snapshots

    def profile_states(self, timeout: float = 5.0) -> List[Any]:
        """Per-worker profiler states for the parent-side merge."""
        states = []
        for handle in self._handles:
            reply = self._control(handle, ("profile",), timeout)
            states.append(reply[1] if reply else None)
        return states

    def inflight_count(self) -> int:
        with self._lock:
            return sum(len(handle.inflight) for handle in self._handles)

    # ------------------------------------------------------------------
    # Watchdog (self-healing of hung workers)
    # ------------------------------------------------------------------
    def _watchdog_scan(self) -> None:
        """Kill workers that stopped heartbeating or are stuck past deadline.

        Killing is the whole intervention: the death surfaces as pipe EOF
        and the existing crash machinery (respawn + one rescue per task)
        heals the shard — hung and dead workers share one recovery path.
        """
        now = time.monotonic()
        clock = time.perf_counter()
        oldest = 0.0
        doomed: List[_WorkerHandle] = []
        unreaped: List[Tuple[_WorkerHandle, Any]] = []
        with self._lock:
            if self._closed:
                return
            for handle in self._handles:
                if not handle.alive or handle.stopping:
                    continue
                process = handle.process
                if process is not None and not process.is_alive():
                    # Dead process whose pipe EOF never reached us (e.g. a
                    # leaked fd is keeping the pipe open): the kill lever
                    # below is useless — reap the death directly, pinned to
                    # this incarnation's connection.
                    unreaped.append((handle, handle.connection))
                    continue
                age = now - handle.last_heartbeat
                if age > oldest:
                    oldest = age
                hung = age > self._heartbeat_timeout
                if not hung:
                    for task in handle.inflight.values():
                        if (
                            task.deadline_at is not None
                            and clock > task.deadline_at + self._hung_task_grace
                        ):
                            # The deadline says nobody wants this result
                            # anymore, yet the worker is still on it.
                            hung = True
                            break
                if hung:
                    doomed.append(handle)
        if self._stats is not None:
            self._stats.set_heartbeat_age(oldest)
        for handle, connection in unreaped:
            if self._stats is not None:
                self._stats.record_watchdog_kill()
            self._on_worker_death(handle, expect=connection)
        for handle in doomed:
            if self._stats is not None:
                self._stats.record_watchdog_kill()
            process = handle.process
            try:
                if process is not None and process.is_alive():
                    process.kill()
            except Exception:  # pragma: no cover - already reaping
                pass

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 30.0) -> List[Any]:
        """Stop every worker, harvest final profiler states, free segments.

        Pending requests drain first (each worker's inner engine finishes
        its queue before acknowledging the stop), so every submitted future
        resolves.  Returns the workers' final profiler states.
        """
        with self._lock:
            if self._closed:
                return []
            self._closed = True
        self._watchdog.stop()
        self._lane.stop()
        states: List[Any] = []
        deadline = time.perf_counter() + timeout
        for handle in self._handles:
            handle.stopping = True
            with handle.send_lock:
                alive = handle.alive
                if alive:
                    try:
                        handle.connection.send(("stop",))
                    except Exception:
                        alive = False
            state = None
            if alive:
                remaining = max(0.5, deadline - time.perf_counter())
                while True:
                    try:
                        reply = handle.replies.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if reply[0] == "stopped":
                        state = reply[1]
                        break
            states.append(state)
            handle.alive = False
            self._teardown_handle(handle)
        # A worker that never acknowledged leaves its in-flight futures
        # unresolved; fail them rather than hang their waiters.
        leftovers: List[_Task] = []
        with self._lock:
            for handle in self._handles:
                leftovers.extend(handle.inflight.values())
                handle.inflight = {}
        for task in leftovers:
            self._deliver(
                task, None, RuntimeError("the worker pool shut down mid-request")
            )
        return states

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            if not self._closed:
                self._watchdog.stop()
                self._lane.stop()
                for handle in self._handles:
                    handle.stopping = True
                    if handle.process is not None and handle.process.is_alive():
                        handle.process.terminate()
                    self._teardown_handle(handle)
        except Exception:
            pass


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1
