"""The multi-process worker pool behind a pooled :class:`Engine`.

Each worker is a forked process running its **own** in-process engine —
the same scheduler + coalescer loop single-process serving uses — over its
own shard of the plan cache and (with profile feedback on) its own
:class:`~repro.profile.ExecutionProfiler`.  The parent's pooled engine is
reduced to a router: it compiles, memoizes, hashes the request's
coalescing identity to a shard (:class:`~repro.service.router.ShardRouter`)
and ships the instance over that worker's shared-memory ring
(:mod:`repro.service.shm`), with a pickle-over-pipe fallback for
object-dtype semirings and payloads that outgrow the ring.

Protocol (control pipe; payload bytes ride the rings)
-----------------------------------------------------
parent -> worker::

    ("plan",     plan_id, payload, schema)         register a compiled plan
    ("semiring", pickled_semiring)                 register a late semiring
    ("submit",   task_id, plan_id, semiring, dims, descriptors)
    ("psubmit",  task_id, plan_id, semiring, dims, pickled_matrices)
    ("stats",)  ("profile",)  ("stop",)

worker -> parent::

    ("result",   task_id, dtype, shape, nbytes)    payload in the result ring
    ("result_p", task_id, pickled_result)
    ("error",    task_id, pickled_exception)
    ("stats", snapshot)  ("profile", state)  ("stopped", profiler_state)

Because each ring has one producer and one consumer and the announcing
pipe message is sent only *after* the ring write, the pipe's FIFO order is
the framing: the receiver reads exactly the announced byte count.  The
corollary is that the receiver must consume exactly the announced bytes
even when it cannot *use* them — a submit whose descriptors fail to
decode drains the payload before replying with the error, because a
skipped byte would desynchronize every later read on the ring.

Semirings are resolved by name in the worker against the registry it
inherited at fork; a semiring registered in the parent *after* the pool
started is shipped once per worker as a ``("semiring", ...)`` message
before the first submit that needs it (vectorized kernel factories
registered post-fork do not travel — such a semiring executes on the
generic object-dtype fold in the workers).

Fork safety
-----------
Workers are started with the ``fork`` method (required; the instance
arrays and registries must be inherited, not re-imported).  The first
thing a worker does is re-initialize the module-level locks a fork may
have captured in a held state (the compiler plan-cache lock, the profile
lock) and clear the inherited plan cache — giving each worker the private
plan-cache shard the sharded design wants anyway.

Crash rescue
------------
A worker that dies (segfault, OOM-kill, ``kill -9``) surfaces as EOF on
its pipe.  The parent respawns the shard and resubmits each in-flight
request **once** to a live worker; a request that has already been rescued
fails its own future with :class:`WorkerCrashError` instead of retrying
forever.  Only futures in flight on the dead worker are touched.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.service.router import ShardRouter
from repro.service.shm import ShmRing

__all__ = ["WorkerCrashError", "WorkerPool"]


class WorkerCrashError(RuntimeError):
    """A request's worker died and its one rescue attempt was exhausted."""


def _reinit_module_locks() -> None:
    """Give the forked worker fresh module locks and a private plan cache.

    A thread of the parent may hold these locks at the instant of the
    fork; the child would then deadlock on first use.  Re-creating them
    (and clearing the inherited plan cache, which doubles as giving the
    worker its own shard) makes the child self-consistent.
    """
    from repro.matlang import compiler
    from repro import profile as profile_module

    compiler._PLAN_CACHE_LOCK = threading.RLock()
    compiler._PLAN_CACHE.clear()
    profile_module._LOCK = threading.Lock()


def _discard_ring_bytes(ring: ShmRing, nbytes: int) -> None:
    """Consume and drop ``nbytes`` announced bytes from ``ring``.

    The error path of a submit whose payload cannot be decoded: the
    producer already wrote (and accounted) these bytes, so they must be
    read exactly once even though nobody wants them.
    """
    while nbytes > 0:
        span = min(nbytes, ring.capacity)
        ring.read(span)
        nbytes -= span


def _rebuild_instance(schema, dimensions, semiring, matrices):
    """Reassemble an :class:`Instance` without re-validating or re-lifting.

    The parent validated the instance at submission; the worker receives
    arrays that are byte-for-byte the validated ones, so running
    ``__post_init__`` again would only re-copy every matrix.
    """
    from repro.matlang.instance import Instance

    instance = Instance.__new__(Instance)
    instance.schema = schema
    instance.dimensions = dict(dimensions)
    instance.matrices = matrices
    instance.semiring = semiring
    return instance


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    index: int,
    connection,
    request_ring: ShmRing,
    result_ring: ShmRing,
    policy,
    functions,
    backend,
    options,
    profile_feedback: bool,
) -> None:
    from repro.semiring.registry import get_semiring
    from repro.service.engine import Engine

    _reinit_module_locks()
    engine = Engine(
        policy=policy,
        functions=functions,
        backend=backend,
        options=options,
        profile_feedback=profile_feedback,
    )
    plans: Dict[int, Any] = {}
    schemas: Dict[int, Any] = {}
    send_lock = threading.Lock()

    def ship(task_id: int, future) -> None:
        error = future.exception()
        if error is not None:
            try:
                payload = pickle.dumps(error)
            except Exception:
                payload = pickle.dumps(RuntimeError(repr(error)))
            with send_lock:
                connection.send(("error", task_id, payload))
            return
        result = future.result()
        result = np.ascontiguousarray(result)
        if result.dtype != object and result.nbytes <= result_ring.capacity:
            with send_lock:
                if result_ring.write([result.data], timeout=2.0):
                    connection.send(
                        ("result", task_id, result.dtype.str, result.shape, result.nbytes)
                    )
                    return
                connection.send(("result_p", task_id, pickle.dumps(result)))
            return
        with send_lock:
            connection.send(("result_p", task_id, pickle.dumps(result)))

    def handle_submit(message, pickled: bool) -> None:
        _, task_id, plan_id, semiring_name, dimensions, payload = message
        failure: Optional[BaseException] = None
        matrices: Dict[str, Any] = {}
        if pickled:
            try:
                matrices = pickle.loads(payload)
            except Exception as error:
                failure = error
        else:
            # The parent wrote (and accounted) every announced byte before
            # sending this message, so every descriptor's bytes must be
            # consumed here exactly once — even after a decode failure —
            # or the ring head desynchronizes and every later shm submit
            # on this worker silently reads the wrong bytes.
            for name, dtype_str, shape, nbytes in payload:
                array = None
                if failure is None:
                    try:
                        candidate = np.empty(shape, dtype=np.dtype(dtype_str))
                        if candidate.nbytes == nbytes:
                            array = candidate
                        else:
                            failure = ValueError(
                                f"descriptor for {name!r} announces {nbytes} "
                                f"bytes but {dtype_str}{shape} holds "
                                f"{candidate.nbytes}"
                            )
                    except Exception as error:
                        failure = error
                try:
                    if array is not None:
                        request_ring.read_into(
                            array.reshape(-1).view(np.uint8).data
                        )
                        matrices[name] = array
                    else:
                        _discard_ring_bytes(request_ring, nbytes)
                except Exception as error:  # the ring itself failed
                    if failure is None:
                        failure = error
        if failure is None:
            # Fallible lookups only after the ring is fully drained.
            try:
                plan = plans[plan_id]
                semiring = get_semiring(semiring_name)
                instance = _rebuild_instance(
                    schemas[plan_id], dimensions, semiring, matrices
                )
            except Exception as error:
                failure = error
        if failure is not None:
            try:
                blob = pickle.dumps(failure)
            except Exception:
                blob = pickle.dumps(RuntimeError(repr(failure)))
            with send_lock:
                connection.send(("error", task_id, blob))
            return
        future = engine.submit_compiled(plan, instance)
        future.add_done_callback(lambda finished, tid=task_id: ship(tid, finished))

    profiler_state: Callable[[], Any] = lambda: (
        engine._profiler.state() if engine._profiler is not None else None
    )

    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break  # parent went away: exit without unlinking anything
        kind = message[0]
        if kind == "submit":
            handle_submit(message, pickled=False)
        elif kind == "psubmit":
            handle_submit(message, pickled=True)
        elif kind == "plan":
            from repro.matlang.ir import deserialize_plan

            _, plan_id, payload, schema = message
            plans[plan_id] = deserialize_plan(payload)
            schemas[plan_id] = schema
        elif kind == "semiring":
            # A semiring registered in the parent after this worker forked.
            from repro.semiring.registry import register_semiring

            try:
                register_semiring(pickle.loads(message[1]), overwrite=True)
            except Exception:
                pass  # the submit needing it fails with a clear SemiringError
        elif kind == "stats":
            with send_lock:
                connection.send(("stats", engine.stats()))
        elif kind == "profile":
            with send_lock:
                connection.send(("profile", profiler_state()))
        elif kind == "stop":
            engine.shutdown(wait=True)
            with send_lock:
                connection.send(("stopped", profiler_state()))
            break
    request_ring.close()
    result_ring.close()
    connection.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Task:
    """One in-flight pooled request (parent-side bookkeeping)."""

    __slots__ = ("task_id", "plan", "instance", "future", "memo_key", "submitted_at", "rescued")

    def __init__(self, task_id, plan, instance, future, memo_key, submitted_at):
        self.task_id = task_id
        self.plan = plan
        self.instance = instance
        self.future = future
        self.memo_key = memo_key
        self.submitted_at = submitted_at
        self.rescued = False


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[Any] = None
        self.connection: Optional[Any] = None
        self.request_ring: Optional[ShmRing] = None
        self.result_ring: Optional[ShmRing] = None
        self.send_lock = threading.Lock()
        self.control_lock = threading.Lock()
        self.replies: "queue.Queue" = queue.Queue()
        self.registered: set = set()
        #: Semiring names the worker is known to resolve: the registry
        #: snapshot it inherited at fork, plus any shipped since.
        self.semirings: set = set()
        self.inflight: Dict[int, _Task] = {}
        self.receiver: Optional[threading.Thread] = None
        self.alive = False
        self.stopping = False


class WorkerPool:
    """N forked workers plus the routing/rescue logic binding them.

    ``deliver(task, result, error)`` is the engine's completion hook: the
    pool calls it exactly once per submitted task, from a parent-side
    receiver thread.
    """

    #: Rescue attempts per request after a worker crash.
    MAX_RESCUES = 1

    def __init__(
        self,
        workers: int,
        deliver: Callable[[_Task, Any, Optional[BaseException]], None],
        policy=None,
        functions=None,
        backend=None,
        options=None,
        profile_feedback: bool = False,
        ring_capacity: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            raise RuntimeError(
                "the worker pool requires the 'fork' start method"
            ) from None
        self.workers = workers
        self.router = ShardRouter(workers)
        self._deliver = deliver
        self._policy = policy
        self._functions = functions
        self._backend = backend
        self._options = options
        self._profile_feedback = profile_feedback
        self._ring_capacity = ring_capacity
        self._lock = threading.Lock()
        self._closed = False
        self._task_counter = 0
        self._plan_counter = 0
        #: ``id(plan) -> (pinned plan, wire plan id, payload, schema)``.
        self._plans: Dict[int, Tuple[Any, int, bytes, Any]] = {}
        self._handles: List[_WorkerHandle] = []
        for index in range(workers):
            handle = _WorkerHandle(index)
            self._spawn(handle)
            self._handles.append(handle)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        from repro.semiring.registry import available_semirings

        capacity = self._ring_capacity
        rings = (
            ShmRing() if capacity is None else ShmRing(capacity),
            ShmRing() if capacity is None else ShmRing(capacity),
        )
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                handle.index,
                child_conn,
                rings[0],
                rings[1],
                self._policy,
                self._functions,
                self._backend,
                self._options,
                self._profile_feedback,
            ),
            name=f"repro-worker-{handle.index}",
            daemon=True,
        )
        # Snapshot the registry *before* the fork: every name in it is
        # inherited by the child, anything registered later must be shipped.
        known_semirings = set(available_semirings())
        process.start()
        child_conn.close()
        handle.process = process
        handle.connection = parent_conn
        handle.request_ring, handle.result_ring = rings
        handle.registered = set()
        handle.semirings = known_semirings
        handle.inflight = {}
        handle.replies = queue.Queue()
        handle.alive = True
        handle.stopping = False
        handle.receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle,),
            name=f"repro-pool-recv-{handle.index}",
            daemon=True,
        )
        handle.receiver.start()

    def _receive_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.connection.recv()
            except (EOFError, OSError):
                if not handle.stopping:
                    self._on_worker_death(handle)
                return
            kind = message[0]
            if kind == "result":
                _, task_id, dtype_str, shape, nbytes = message
                array = np.empty(shape, dtype=np.dtype(dtype_str))
                try:
                    handle.result_ring.read_into(
                        array.reshape(-1).view(np.uint8).data
                    )
                except Exception as error:
                    self._complete(handle, task_id, None, error)
                    continue
                self._complete(handle, task_id, array, None)
            elif kind == "result_p":
                _, task_id, payload = message
                try:
                    result = pickle.loads(payload)
                except Exception as error:
                    self._complete(handle, task_id, None, error)
                    continue
                self._complete(handle, task_id, result, None)
            elif kind == "error":
                _, task_id, payload = message
                try:
                    error = pickle.loads(payload)
                except Exception:
                    error = RuntimeError("worker reported an undecodable error")
                self._complete(handle, task_id, None, error)
            else:  # stats / profile / stopped control replies
                handle.replies.put(message)
                if kind == "stopped":
                    return

    def _complete(self, handle, task_id, result, error) -> None:
        with self._lock:
            task = handle.inflight.pop(task_id, None)
        if task is None:
            return  # already rescued onto another worker
        self._deliver(task, result, error)

    def _on_worker_death(self, handle: _WorkerHandle) -> None:
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
            orphaned = list(handle.inflight.values())
            handle.inflight = {}
            closed = self._closed
            exhausted: List[_Task] = []
            rescuable: List[_Task] = []
            for task in orphaned:
                if task.rescued or closed:
                    exhausted.append(task)
                else:
                    # Claimed under the pool lock so a submit thread whose
                    # _send_task to this worker is failing concurrently can
                    # see ownership changed hands (see _dispatch's cleanup).
                    task.rescued = True
                    rescuable.append(task)
        self._teardown_handle(handle)
        if not closed:
            try:
                self._spawn(handle)
            except Exception:
                pass
        crash = WorkerCrashError(
            f"worker {handle.index} (shard {handle.index}) died unexpectedly"
        )
        for task in exhausted:
            self._deliver(task, None, crash)
        for task in rescuable:
            try:
                self._dispatch(task)
            except Exception as error:
                self._deliver(task, None, error)

    def _teardown_handle(self, handle: _WorkerHandle) -> None:
        try:
            handle.connection.close()
        except Exception:
            pass
        process = handle.process
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5.0)
        for ring in (handle.request_ring, handle.result_ring):
            if ring is not None:
                ring.destroy()
        handle.request_ring = handle.result_ring = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, plan, instance, future, memo_key, submitted_at) -> Optional[_Task]:
        """Route one compiled request to its shard; ``None`` when closed."""
        with self._lock:
            if self._closed:
                return None
            self._task_counter += 1
            task = _Task(
                self._task_counter, plan, instance, future, memo_key, submitted_at
            )
        self._dispatch(task)
        return task

    def _plan_record(self, plan) -> Tuple[int, bytes, Any]:
        from repro.matlang.ir import serialize_plan

        with self._lock:
            record = self._plans.get(id(plan))
            if record is not None and record[0] is plan:
                return record[1], record[2], record[3]
        payload = serialize_plan(plan)
        with self._lock:
            record = self._plans.get(id(plan))
            if record is not None and record[0] is plan:
                return record[1], record[2], record[3]
            self._plan_counter += 1
            # The schema rides along once per plan: every instance of the
            # plan conforms to it, so per-submit traffic carries dims only.
            self._plans[id(plan)] = (plan, self._plan_counter, payload, None)
            return self._plan_counter, payload, None

    def _dispatch(self, task: _Task) -> None:
        plan_id, payload, _ = self._plan_record(task.plan)
        instance = task.instance
        shard = self.router.shard_for(
            plan_id, instance.semiring.name, instance.dimensions
        )
        handle = self._handles[shard]
        with self._lock:
            if not handle.alive:
                alive = [h for h in self._handles if h.alive]
                if not alive:
                    raise WorkerCrashError("no live workers")
                handle = alive[shard % len(alive)]
            handle.inflight[task.task_id] = task
            was_rescued = task.rescued
        try:
            self._send_task(handle, task, plan_id, payload)
        except Exception:
            with self._lock:
                if task.rescued == was_rescued:
                    handle.inflight.pop(task.task_id, None)
                    owned = True
                else:
                    # The worker died mid-send and _on_worker_death already
                    # orphaned this task and claimed it for rescue; the
                    # rescue now owns delivery, so the send failure must
                    # neither fail the future nor pop the rescue's fresh
                    # registration (which reuses the same task_id key).
                    owned = False
            if owned:
                raise

    def _send_task(self, handle, task, plan_id, payload) -> None:
        instance = task.instance
        matrices = instance.matrices
        names = sorted(matrices)
        arrays = [np.ascontiguousarray(matrices[name]) for name in names]
        shippable = all(array.dtype != object for array in arrays)
        total = sum(array.nbytes for array in arrays)
        with handle.send_lock:
            if not handle.alive:
                raise WorkerCrashError(f"worker {handle.index} is down")
            if plan_id not in handle.registered:
                handle.connection.send(
                    ("plan", plan_id, payload, instance.schema)
                )
                handle.registered.add(plan_id)
            if instance.semiring.name not in handle.semirings:
                # Registered in the parent after this worker forked: ship
                # the object so the worker's by-name lookup can resolve it.
                # The lazily cached kernel backend is stripped (the worker
                # re-resolves it); an unpicklable semiring fails here, at
                # submit time, instead of as a worker-side name miss.
                clone = copy.copy(instance.semiring)
                clone.__dict__.pop("_kernels", None)
                clone.__dict__.pop("_kernels_version", None)
                handle.connection.send(("semiring", pickle.dumps(clone)))
                handle.semirings.add(instance.semiring.name)
            if (
                shippable
                and total <= handle.request_ring.capacity
                and handle.request_ring.write(
                    [array.data for array in arrays], timeout=2.0
                )
            ):
                descriptors = tuple(
                    (name, array.dtype.str, array.shape, array.nbytes)
                    for name, array in zip(names, arrays)
                )
                handle.connection.send(
                    (
                        "submit",
                        task.task_id,
                        plan_id,
                        instance.semiring.name,
                        dict(instance.dimensions),
                        descriptors,
                    )
                )
            else:
                handle.connection.send(
                    (
                        "psubmit",
                        task.task_id,
                        plan_id,
                        instance.semiring.name,
                        dict(instance.dimensions),
                        pickle.dumps({name: matrices[name] for name in names}),
                    )
                )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _control(self, handle: _WorkerHandle, request: Tuple, timeout: float):
        with handle.control_lock:
            with handle.send_lock:
                if not handle.alive:
                    return None
                handle.connection.send(request)
            try:
                return handle.replies.get(timeout=timeout)
            except queue.Empty:
                return None

    def worker_stats(self, timeout: float = 5.0) -> List[Any]:
        """Per-worker engine snapshots (``None`` for unreachable workers)."""
        snapshots = []
        for handle in self._handles:
            reply = self._control(handle, ("stats",), timeout)
            snapshots.append(reply[1] if reply else None)
        return snapshots

    def profile_states(self, timeout: float = 5.0) -> List[Any]:
        """Per-worker profiler states for the parent-side merge."""
        states = []
        for handle in self._handles:
            reply = self._control(handle, ("profile",), timeout)
            states.append(reply[1] if reply else None)
        return states

    def inflight_count(self) -> int:
        with self._lock:
            return sum(len(handle.inflight) for handle in self._handles)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 30.0) -> List[Any]:
        """Stop every worker, harvest final profiler states, free segments.

        Pending requests drain first (each worker's inner engine finishes
        its queue before acknowledging the stop), so every submitted future
        resolves.  Returns the workers' final profiler states.
        """
        with self._lock:
            if self._closed:
                return []
            self._closed = True
        states: List[Any] = []
        deadline = time.perf_counter() + timeout
        for handle in self._handles:
            handle.stopping = True
            with handle.send_lock:
                alive = handle.alive
                if alive:
                    try:
                        handle.connection.send(("stop",))
                    except Exception:
                        alive = False
            state = None
            if alive:
                remaining = max(0.5, deadline - time.perf_counter())
                while True:
                    try:
                        reply = handle.replies.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if reply[0] == "stopped":
                        state = reply[1]
                        break
            states.append(state)
            handle.alive = False
            self._teardown_handle(handle)
        # A worker that never acknowledged leaves its in-flight futures
        # unresolved; fail them rather than hang their waiters.
        leftovers: List[_Task] = []
        with self._lock:
            for handle in self._handles:
                leftovers.extend(handle.inflight.values())
                handle.inflight = {}
        for task in leftovers:
            self._deliver(
                task, None, RuntimeError("the worker pool shut down mid-request")
            )
        return states

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            if not self._closed:
                for handle in self._handles:
                    handle.stopping = True
                    if handle.process is not None and handle.process.is_alive():
                        handle.process.terminate()
                    self._teardown_handle(handle)
        except Exception:
            pass


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1
