"""Shard routing for the multi-process serving tier.

With worker processes in play the engine stops being a scheduler and
becomes a **router**: every request is hashed to one shard by its
coalescing identity — ``(plan, semiring, dimension signature)`` — so all
requests that *could* coalesce into one stacked kernel call land on the
same worker, whose in-process scheduler then actually coalesces them.
Spreading one group across workers would trade the proven ~20-40x
coalesce ratio for parallelism the group doesn't need; keying the route on
the group identity keeps both.

The hash must be stable across calls (the same plan must keep routing to
the same shard for its worker-side plan registration to amortize), so it
is a ``crc32`` over the registered plan id and the instance signature —
never the builtin ``hash``, which is salted per process.
"""

from __future__ import annotations

import zlib
from typing import Sequence, Tuple

__all__ = ["ShardRouter"]


class ShardRouter:
    """Stable request-to-shard assignment over ``shards`` workers."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.shards = shards

    def shard_for(self, plan_id: int, semiring_name: str, dimensions) -> int:
        """The shard index of one request's coalescing identity."""
        signature = self.signature(plan_id, semiring_name, dimensions)
        return zlib.crc32(repr(signature).encode()) % self.shards

    @staticmethod
    def signature(plan_id: int, semiring_name: str, dimensions) -> Tuple:
        """The hashed identity: plan, semiring, sorted dimension items."""
        return (plan_id, semiring_name, tuple(sorted(dimensions.items())))

    def shard_among(
        self, plan_id: int, semiring_name: str, dimensions, candidates: Sequence[int]
    ) -> int:
        """Stable selection among a subset of live shards (rendezvous style).

        Used when a request's home shard is down: scoring every candidate
        with the same crc32 and taking the maximum keeps the choice stable
        for a given set of live workers — repeats of one coalescing identity
        keep landing on one stand-in (so they still coalesce there, and its
        plan registration amortizes), and candidates that stay alive keep
        their assignments when *another* worker's liveness changes, unlike
        ``candidates[hash % len(candidates)]``, which reshuffles everything.
        """
        if not candidates:
            raise ValueError("no candidate shards")
        signature = repr(self.signature(plan_id, semiring_name, dimensions)).encode()
        return max(
            candidates,
            key=lambda shard: zlib.crc32(signature + b"|%d" % shard),
        )
