"""A minimal length-prefixed socket protocol in front of the engine.

External processes (load generators, sidecars, other languages' runtimes
via a shim) submit queries over TCP instead of importing the engine.  The
protocol is deliberately tiny — one frame per message::

    [ 4-byte magic b"RPQ1" ][ 4-byte big-endian payload length ][ payload ]

where the payload is a pickled tuple.  Requests::

    ("query",       expression, instance[, deadline])
    ("query_many",  [(expression, instance[, deadline]), ...])
    ("stats",)
    ("metrics",)
    ("worker_stats",)
    ("hot_plans"[, top])
    ("ping",)

Responses::

    ("result", value)                         for query
    ("results", [("ok", value) | ("error", type_name, message), ...])
    ("error", type_name, message)             the request itself failed
    ("stats", EngineStatsSnapshot)
    ("metrics", text)                         Prometheus exposition (str)
    ("worker_stats", [snapshot | None, ...])  per-worker heartbeat snapshots
    ("hot_plans", [{"plan": ..., ...}, ...])  hottest plans from trace data
    ("pong",)

``deadline`` is seconds-from-receipt (the engine's ``submit`` deadline);
omitting it keeps the old two-element form working.  Error responses
carry the remote exception's type name, and the client re-raises the
serving tier's *typed* errors (:class:`~repro.exceptions.DeadlineExceededError`,
:class:`~repro.exceptions.EngineOverloadedError`, and friends) as
themselves so remote callers can branch on overload-vs-expired exactly
like in-process callers; everything else surfaces as
:class:`RemoteQueryError`.

Security model: **trusted local transport only**.  Payloads are pickled —
the same trust boundary as the in-process API — so unpickling a frame
hands code execution to whoever sent it.  The server therefore *refuses*
to bind a non-loopback address unless the caller passes
``allow_remote=True`` (and even then warns), the magic prefix rejects
stray connections (port scanners, HTTP probes) before any unpickling
happens, and both sides run with socket timeouts so a dead peer releases
its thread instead of leaking it.
"""

from __future__ import annotations

import ipaddress
import pickle
import socket
import struct
import threading
import warnings
from typing import Any, Iterable, List, Optional, Tuple

from repro.exceptions import (
    DeadlineExceededError,
    EngineDiedError,
    EngineOverloadedError,
    PlanQuarantinedError,
    WorkerCrashError,
)
from repro.service import faults

__all__ = ["MAGIC", "ProtocolError", "QueryClient", "QueryServer", "RemoteQueryError"]

MAGIC = b"RPQ1"

_LENGTH = struct.Struct("!I")

#: Refuse frames beyond this size (a corrupted length must not allocate 4GB).
MAX_FRAME = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not this protocol."""


def _is_loopback(host: str) -> bool:
    """Whether binding ``host`` is reachable only from this machine.

    Unresolvable names and wildcard binds (``""``, ``"0.0.0.0"``, ``"::"``)
    count as remote — the check errs toward refusing.
    """
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


class RemoteQueryError(RuntimeError):
    """A query failed on the server; carries the remote type name."""

    def __init__(self, type_name: str, message: str) -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.remote_message = message


#: Serving-tier errors the client re-raises as their own types, so remote
#: callers can branch on shed-vs-overload-vs-crash like in-process callers.
_TYPED_REMOTE = {
    cls.__name__: cls
    for cls in (
        DeadlineExceededError,
        EngineOverloadedError,
        PlanQuarantinedError,
        EngineDiedError,
        WorkerCrashError,
    )
}


def _raise_remote(type_name: str, message: str) -> None:
    typed = _TYPED_REMOTE.get(type_name)
    if typed is not None:
        raise typed(f"(remote) {message}")
    raise RemoteQueryError(type_name, message)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _send_message(sock: socket.socket, payload: Any) -> None:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    frame = MAGIC + _LENGTH.pack(len(data)) + data
    if faults.ACTIVE is not None and faults.ACTIVE.deny("server.send"):
        # Injected mid-frame socket drop: ship a truncated prefix, then
        # kill the connection — the peer must treat it as a dead channel,
        # never as a short (but well-formed) frame.
        try:
            sock.sendall(frame[: max(1, len(frame) // 2)])
        finally:
            try:
                sock.close()
            except OSError:
                pass
        raise ConnectionError("injected socket drop mid-frame")
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_message(sock: socket.socket) -> Any:
    header = _recv_exact(sock, len(MAGIC) + _LENGTH.size)
    if header[: len(MAGIC)] != MAGIC:
        raise ProtocolError(f"bad magic {header[:len(MAGIC)]!r}")
    (length,) = _LENGTH.unpack(header[len(MAGIC) :])
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME} cap")
    return pickle.loads(_recv_exact(sock, length))


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class QueryServer:
    """A threaded TCP front door over one engine.

    One daemon thread accepts connections; each connection gets its own
    handler thread (connections are long-lived query channels, typically
    few).  The server does not own the engine — closing the server leaves
    the engine serving in-process callers.

    Requests are unpickled, so any peer that can connect can execute code
    in this process.  Non-loopback ``host`` values are refused unless
    ``allow_remote=True`` is passed explicitly — and that is only safe on
    a network where every reachable peer is fully trusted.
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        allow_remote: bool = False,
    ) -> None:
        if not _is_loopback(host):
            if not allow_remote:
                raise ValueError(
                    f"refusing to bind non-loopback host {host!r}: the "
                    "protocol unpickles payloads, so any peer that can "
                    "connect gets code execution in this process; pass "
                    "allow_remote=True only on a fully trusted network"
                )
            warnings.warn(
                f"QueryServer bound to non-loopback host {host!r}: every "
                "peer that can reach it can execute code in this process",
                stacklevel=2,
            )
        self.engine = engine
        self.timeout = timeout
        self._registry: Any = None  # lazily-built obs MetricsRegistry
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)  # poll the closed flag while accepting
        self._closed = False
        self._connections: List[socket.socket] = []
        self._lock = threading.Lock()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-query-server", daemon=True
        )
        self._acceptor.start()

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()[:2]

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            connection.settimeout(self.timeout)
            with self._lock:
                if self._closed:
                    connection.close()
                    return
                self._connections.append(connection)
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-query-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            while not self._closed:
                try:
                    message = _recv_message(connection)
                except (ConnectionError, socket.timeout, OSError, ProtocolError):
                    return
                try:
                    response = self._handle(message)
                except Exception as error:  # request-level failure
                    response = ("error", type(error).__name__, str(error))
                try:
                    _send_message(connection, response)
                except (OSError, socket.timeout):
                    return
        finally:
            connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _handle(self, message: Any) -> Tuple:
        kind = message[0]
        if kind == "ping":
            return ("pong",)
        if kind == "stats":
            return ("stats", self.engine.stats())
        if kind == "metrics":
            if self._registry is None:
                from repro.obs.metrics import engine_registry

                self._registry = engine_registry(self.engine)
            return ("metrics", self._registry.prometheus())
        if kind == "worker_stats":
            return ("worker_stats", self.engine.worker_stats(timeout=2.0))
        if kind == "hot_plans":
            top = message[1] if len(message) > 1 else 5
            tracer = getattr(self.engine, "tracer", None)
            plans = [] if tracer is None else tracer.hot_plans(top)
            return ("hot_plans", plans)
        if kind == "query":
            expression, instance = message[1], message[2]
            deadline = message[3] if len(message) > 3 else None
            try:
                value = self.engine.submit(expression, instance, deadline).result(
                    self.timeout
                )
            except Exception as error:
                return ("error", type(error).__name__, str(error))
            return ("result", value)
        if kind == "query_many":
            _, pairs = message
            futures = self.engine.submit_many(pairs)
            outcomes: List[Tuple] = []
            for future in futures:
                try:
                    outcomes.append(("ok", future.result(self.timeout)))
                except Exception as error:
                    outcomes.append(("error", type(error).__name__, str(error)))
            return ("results", outcomes)
        return ("error", "ProtocolError", f"unknown request kind {kind!r}")

    def close(self) -> None:
        """Stop accepting and drop open connections; idempotent."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except OSError:
                pass
        self._acceptor.join(timeout=5.0)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class QueryClient:
    """A blocking client for :class:`QueryServer`.

    One socket, serial request/response — callers wanting concurrency open
    one client per thread or use :meth:`query_many` for whole bursts.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
    ) -> None:
        self.timeout = timeout
        # Connecting to a wedged (or SYN-dropping) server must not stall a
        # caller for the full I/O timeout: the handshake gets its own,
        # typically much shorter, budget.
        self._sock = socket.create_connection(
            (host, port),
            timeout=timeout if connect_timeout is None else connect_timeout,
        )
        self._sock.settimeout(timeout)
        self._lock = threading.Lock()

    def _roundtrip(self, request: Tuple) -> Any:
        with self._lock:
            _send_message(self._sock, request)
            return _recv_message(self._sock)

    def query(
        self, expression: Any, instance: Any, deadline: Optional[float] = None
    ) -> Any:
        """Evaluate one query remotely; raises :class:`RemoteQueryError`.

        ``deadline`` (seconds) travels with the request and is enforced by
        the server's engine; its expiry comes back as a real
        :class:`~repro.exceptions.DeadlineExceededError`.
        """
        request = (
            ("query", expression, instance)
            if deadline is None
            else ("query", expression, instance, deadline)
        )
        response = self._roundtrip(request)
        if response[0] == "result":
            return response[1]
        if response[0] == "error":
            _raise_remote(response[1], response[2])
        raise ProtocolError(f"unexpected response {response[0]!r}")

    def query_many(self, pairs: Iterable[Tuple[Any, ...]]) -> List[Any]:
        """Evaluate a burst; per-item failures raise on access order.

        Items are ``(expression, instance)`` or
        ``(expression, instance, deadline)`` tuples.  Results come back in
        input order; an item that failed remotely raises when the whole
        call returns — the first failed item wins, matching
        ``submit_many`` + ``result()``.
        """
        response = self._roundtrip(("query_many", list(pairs)))
        if response[0] == "error":
            _raise_remote(response[1], response[2])
        if response[0] != "results":
            raise ProtocolError(f"unexpected response {response[0]!r}")
        results = []
        for outcome in response[1]:
            if outcome[0] == "error":
                _raise_remote(outcome[1], outcome[2])
            results.append(outcome[1])
        return results

    def stats(self) -> Any:
        response = self._roundtrip(("stats",))
        if response[0] != "stats":
            raise ProtocolError(f"unexpected response {response[0]!r}")
        return response[1]

    def metrics(self) -> str:
        """Prometheus text exposition of the server engine's metrics."""
        response = self._roundtrip(("metrics",))
        if response[0] == "error":
            _raise_remote(response[1], response[2])
        if response[0] != "metrics":
            raise ProtocolError(f"unexpected response {response[0]!r}")
        return response[1]

    def worker_stats(self) -> List[Any]:
        """Per-worker heartbeat snapshots (empty for single-process engines)."""
        response = self._roundtrip(("worker_stats",))
        if response[0] == "error":
            _raise_remote(response[1], response[2])
        if response[0] != "worker_stats":
            raise ProtocolError(f"unexpected response {response[0]!r}")
        return response[1]

    def hot_plans(self, top: int = 5) -> List[Any]:
        """Hottest plans by traced kernel time (empty when tracing is off)."""
        response = self._roundtrip(("hot_plans", top))
        if response[0] == "error":
            _raise_remote(response[1], response[2])
        if response[0] != "hot_plans":
            raise ProtocolError(f"unexpected response {response[0]!r}")
        return response[1]

    def ping(self) -> bool:
        return self._roundtrip(("ping",))[0] == "pong"

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
