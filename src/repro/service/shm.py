"""Shared-memory ring transport between the router and its workers.

Shipping a request to a worker process must not cost more than the kernels
it saves: pickling a 512x512 float64 matrix serializes two megabytes
through a pipe *twice* (encode + decode), while the actual information
content is the raw dtype bytes.  Each worker therefore gets a pair of
single-producer/single-consumer byte rings in ``multiprocessing``
shared memory — requests flowing parent -> worker, results worker ->
parent — and matrix payloads cross the process boundary as **one memcpy
each way**, no serialization at all.

Framing lives on the worker's control pipe, not in the ring: the producer
copies the payload bytes into the ring **first** and only then sends the
pickled control message announcing them (opcode, dtype, shape, byte
count).  Pipe messages are FIFO and each ring has exactly one producer and
one consumer, so when the consumer receives the announcement the bytes are
already present and a plain cursor read suffices — the ring itself needs
no locks, just two monotonically increasing ``uint64`` cursors in its
16-byte header:

    [ head : uint64 ][ tail : uint64 ][ capacity bytes of payload ... ]

``head`` is advanced only by the consumer, ``tail`` only by the producer;
free space is ``capacity - (tail - head)``.  Aligned 8-byte cursor writes
are a single memcpy on every platform CPython runs on, and each cursor has
a single writer, so torn reads cannot produce an unsafe state (a stale
read only under-reports free space).  Writers poll with a short sleep when
the ring is full and report failure on timeout — the caller then falls
back to pickling through the pipe, so a stuck consumer degrades throughput
instead of deadlocking the tier.

The parent creates both rings before forking; the worker inherits the
mapped segments through ``fork`` and never re-attaches, so the operating
system sees exactly one registration per segment and the parent's
``unlink`` at shutdown removes it — no leaked ``/dev/shm`` entries even
when a worker died abnormally.
"""

from __future__ import annotations

import secrets
import struct
import time
from multiprocessing import shared_memory
from typing import Optional, Sequence

__all__ = ["ShmRing", "SEGMENT_PREFIX"]

#: Prefix of every segment this module creates; the lifecycle tests sweep
#: ``/dev/shm`` for it to prove shutdown leaves nothing behind.
SEGMENT_PREFIX = "repro-svc"

_CURSORS = struct.Struct("<QQ")  # head, tail
_MASK = (1 << 64) - 1

#: Default payload capacity per ring.  Large enough for several 512x512
#: float64 matrices in flight; anything bigger falls back to the pipe.
DEFAULT_CAPACITY = 8 * 1024 * 1024

#: Sleep between polls while waiting for ring space.
_POLL_INTERVAL = 50e-6


class ShmRing:
    """One single-producer/single-consumer shared-memory byte ring."""

    HEADER = _CURSORS.size

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, name: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        if name is None:
            name = f"{SEGMENT_PREFIX}-{secrets.token_hex(6)}"
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=self.HEADER + capacity
            )
            _CURSORS.pack_into(self._shm.buf, 0, 0, 0)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        self.name = self._shm.name

    # ------------------------------------------------------------------
    # Cursors
    # ------------------------------------------------------------------
    def _cursors(self):
        return _CURSORS.unpack_from(self._shm.buf, 0)

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 0, value & _MASK)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 8, value & _MASK)

    def used(self) -> int:
        head, tail = self._cursors()
        return (tail - head) & _MASK

    def free(self) -> int:
        return self.capacity - self.used()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def write(self, chunks: Sequence, timeout: float = 1.0, abort=None) -> bool:
        """Copy ``chunks`` (bytes-like) into the ring; ``False`` on no-fit.

        Returns ``False`` without writing anything when the payload can
        never fit (larger than the capacity) or when space does not free up
        within ``timeout`` seconds — the caller's cue to use the pickle
        fallback.  ``abort`` (an optional zero-argument callable) is polled
        while waiting for space; when it turns true the wait ends
        immediately with ``False`` — the producer's escape hatch when the
        consumer is known dead and space will never free up.  A successful
        write publishes the advanced tail only after every byte is in
        place.
        """
        from repro.service import faults

        if faults.ACTIVE is not None and faults.ACTIVE.deny(
            "shm.write", ring=self.name
        ):
            # Injected write failure: report no-fit so the caller exercises
            # its pickle fallback, without touching the cursors.
            return False
        views = [memoryview(chunk).cast("B") for chunk in chunks]
        total = sum(view.nbytes for view in views)
        if total > self.capacity:
            return False
        if total == 0:
            return True
        deadline = time.perf_counter() + timeout
        while self.free() < total:
            if abort is not None and abort():
                return False
            if time.perf_counter() >= deadline:
                return False
            time.sleep(_POLL_INTERVAL)
        _, tail = self._cursors()
        buf = self._shm.buf
        position = tail % self.capacity
        for view in views:
            remaining = view
            while remaining.nbytes:
                span = min(remaining.nbytes, self.capacity - position)
                start = self.HEADER + position
                buf[start : start + span] = remaining[:span]
                remaining = remaining[span:]
                position = (position + span) % self.capacity
        self._set_tail(tail + total)
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def read_into(self, destination, timeout: float = 5.0) -> None:
        """Fill a writable bytes-like object from the ring, advancing head.

        The transport protocol guarantees the bytes were published before
        the announcing pipe message was sent, so in a healthy tier this
        never waits; the timeout is a guard against a corrupted peer.
        """
        view = memoryview(destination).cast("B")
        total = view.nbytes
        if total > self.capacity:
            raise ValueError(
                f"read of {total} bytes exceeds ring capacity {self.capacity}"
            )
        deadline = time.perf_counter() + timeout
        while self.used() < total:
            if time.perf_counter() >= deadline:
                raise TimeoutError(
                    f"ring {self.name}: announced payload of {total} bytes "
                    f"never arrived (have {self.used()})"
                )
            time.sleep(_POLL_INTERVAL)
        head, _ = self._cursors()
        buf = self._shm.buf
        position = head % self.capacity
        copied = 0
        while copied < total:
            span = min(total - copied, self.capacity - position)
            start = self.HEADER + position
            view[copied : copied + span] = buf[start : start + span]
            copied += span
            position = (position + span) % self.capacity
        self._set_head(head + total)

    def read(self, nbytes: int, timeout: float = 5.0) -> bytes:
        """Consume ``nbytes`` as a fresh bytes object."""
        out = bytearray(nbytes)
        self.read_into(out, timeout)
        return bytes(out)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Remove the backing segment (creator side; idempotent)."""
        try:
            self._shm.unlink()
        except Exception:
            pass

    def destroy(self) -> None:
        self.close()
        if self._owner:
            self.unlink()
