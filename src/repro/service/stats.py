"""Throughput telemetry for the concurrent query service.

:class:`EngineStats` is the engine's single mutable telemetry object: every
counter mutation and every snapshot runs under one lock, so readers always
see a consistent state (a completion can never be visible in ``completed``
while its latency sample or its dispatch is still missing).  Snapshots are
frozen :class:`EngineStatsSnapshot` values — plain data, safe to hand to
monitoring code on any thread.

The derived figures follow the usual serving-layer conventions:

``coalesce_ratio``
    Requests executed per kernel dispatch, i.e. ``completed / dispatches``.
    ``1.0`` means no batching happened (every request ran alone); the whole
    point of the micro-batching scheduler is to push this well above 1 on
    concurrent streams.
``throughput``
    Completed requests per second of serving time, measured from the first
    submission to the most recent completion.
``latency_p50`` / ``latency_p95``
    Percentiles over a bounded reservoir of the most recent per-request
    latencies (submission to result delivery), so a long-lived engine's
    percentiles track current behaviour instead of averaging over its whole
    history.

Every snapshot is anchored to wall-clock time: the stats object captures a
``(perf_counter, epoch)`` :class:`~repro.obs.clock.ClockAnchor` pair at
engine start, and stamps each snapshot with ``started_epoch`` /
``snapshot_epoch`` / ``uptime_seconds`` — so exported metrics and traces
can say *when* something happened, not just how long it took.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.obs.clock import ClockAnchor

__all__ = ["EngineStats", "EngineStatsSnapshot"]


@dataclass(frozen=True)
class EngineStatsSnapshot:
    """One atomic reading of the engine's telemetry."""

    #: Requests accepted by ``submit`` / ``submit_many`` so far.
    submitted: int
    #: Requests whose future resolved successfully.
    completed: int
    #: Requests whose future resolved with an exception.
    failed: int
    #: Requests currently waiting in the queue (not yet dispatched).
    queue_depth: int
    #: Kernel dispatches issued: batched group executions plus per-instance
    #: fallback executions (each counts one).
    dispatches: int
    #: Requests that were served through a stacked batch of two or more.
    batched_requests: int
    #: Requests that ran per-instance (singleton groups, sparse-selected or
    #: non-batchable plans, and batch-execution rescues).
    fallback_requests: int
    #: Finished requests per kernel dispatch (1.0 = no coalescing).
    coalesce_ratio: float
    #: Completed requests per second of serving time.
    throughput: float
    #: Median / 95th-percentile request latency in seconds over the
    #: most recent requests (``None`` until something completed).
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    #: Requests answered from the cross-request result memo without any
    #: kernel execution (pooled engines; 0 with memoization off).
    memo_hits: int = 0
    #: Requests that consulted the memo and missed (and therefore executed).
    memo_misses: int = 0
    #: Result bytes currently retained by the memo.
    memo_bytes: int = 0
    #: Worker processes behind this engine (0 = in-process scheduler).
    workers: int = 0
    #: Requests shed because their deadline expired before execution.
    shed_expired: int = 0
    #: Requests shed by admission control (queue-depth / cost thresholds).
    shed_overload: int = 0
    #: Pooled dispatch attempts retried after a transient send failure.
    dispatch_retries: int = 0
    #: Worker processes respawned after a death (crash or watchdog kill).
    worker_respawns: int = 0
    #: Workers force-killed by the watchdog (hung heartbeat / stuck task).
    watchdog_kills: int = 0
    #: Plan circuit-breaker trips (closed -> open, incl. failed probes).
    quarantine_trips: int = 0
    #: Requests answered on the quarantine path (sandbox or typed rejection).
    quarantined_requests: int = 0
    #: Plans whose breaker is currently open or half-open (gauge).
    quarantine_open: int = 0
    #: Oldest worker-heartbeat age in seconds at the last watchdog scan
    #: (gauge; ``None`` until a pooled watchdog has scanned).
    heartbeat_age: Optional[float] = None
    #: Estimated cost of the current backlog (gauge; admission-control units).
    pending_cost: float = 0.0
    #: Stacked dispatches executed on the block-diagonal sparse / mixed lane
    #: (a subset of ``dispatches``; 0 when every batch ran dense).
    sparse_batches: int = 0
    #: Requests served through a block-diagonal sparse / mixed batch
    #: (a subset of ``batched_requests``).
    sparse_batched_requests: int = 0
    #: Wall-clock seconds spent assembling and executing block-diagonal
    #: sparse batches (group stacking through kernel completion).
    sparse_assembly_seconds: float = 0.0
    #: Engine start, as seconds since the Unix epoch (wall-clock anchor
    #: captured when the stats object was created).
    started_epoch: float = 0.0
    #: Snapshot capture time, on the same wall-clock axis.
    snapshot_epoch: float = 0.0
    #: Seconds between engine start and this snapshot (monotonic).
    uptime_seconds: float = 0.0

    def render(self) -> str:
        """A one-line human-readable summary (used by benchmarks / examples)."""
        p50 = "-" if self.latency_p50 is None else f"{self.latency_p50 * 1e3:.2f}ms"
        p95 = "-" if self.latency_p95 is None else f"{self.latency_p95 * 1e3:.2f}ms"
        line = (
            f"served={self.completed} failed={self.failed} queued={self.queue_depth} "
            f"dispatches={self.dispatches} coalesce={self.coalesce_ratio:.1f}x "
            f"throughput={self.throughput:.0f}/s p50={p50} p95={p95}"
        )
        if self.workers:
            line += f" workers={self.workers}"
        if self.memo_hits or self.memo_misses:
            looked = self.memo_hits + self.memo_misses
            rate = self.memo_hits / looked if looked else 0.0
            line += (
                f" memo={self.memo_hits}/{looked} ({rate:.0%} hit, "
                f"{self.memo_bytes / 1e6:.1f}MB)"
            )
        if self.shed_expired or self.shed_overload:
            line += f" shed={self.shed_expired}exp/{self.shed_overload}ovl"
        if self.dispatch_retries:
            line += f" retries={self.dispatch_retries}"
        if self.worker_respawns or self.watchdog_kills:
            line += (
                f" respawns={self.worker_respawns}"
                f" (watchdog={self.watchdog_kills})"
            )
        if self.quarantine_trips or self.quarantine_open:
            line += (
                f" quarantine={self.quarantine_open}open/"
                f"{self.quarantine_trips}trips/{self.quarantined_requests}req"
            )
        if self.heartbeat_age is not None:
            line += f" hb_age={self.heartbeat_age:.2f}s"
        if self.sparse_batches:
            line += (
                f" sparse_batch={self.sparse_batched_requests}req/"
                f"{self.sparse_batches} "
                f"({self.sparse_assembly_seconds * 1e3:.1f}ms)"
            )
        return line


def _percentile(sorted_values: Tuple[float, ...], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sample."""
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


class EngineStats:
    """Lock-guarded accumulator behind :meth:`Engine.stats`.

    All mutators take the internal lock; nothing is published except through
    :meth:`snapshot`, which also computes the derived ratios under the same
    lock — so a snapshot can never pair counters from two different moments.
    """

    #: Latency samples retained for the percentile reservoir.  4096 recent
    #: requests bound both memory and the per-snapshot sort while keeping
    #: the percentiles meaningful for bursty serving workloads.
    RESERVOIR_SIZE = 4096

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Wall-clock anchor captured at engine start; converts the
        #: ``perf_counter`` timings everything here is measured with into
        #: absolute epoch timestamps for snapshots and trace spans.
        self.anchor = ClockAnchor()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._queue_depth = 0
        self._dispatches = 0
        self._batched_requests = 0
        self._fallback_requests = 0
        self._latencies: Deque[float] = deque(maxlen=self.RESERVOIR_SIZE)
        self._first_submit: Optional[float] = None
        self._last_done: Optional[float] = None
        self._memo_hits = 0
        self._memo_misses = 0
        self._memo_bytes = 0
        self._workers = 0
        self._shed_expired = 0
        self._shed_overload = 0
        self._dispatch_retries = 0
        self._worker_respawns = 0
        self._watchdog_kills = 0
        self._quarantine_trips = 0
        self._quarantined_requests = 0
        self._quarantine_open = 0
        self._heartbeat_age: Optional[float] = None
        self._pending_cost = 0.0
        self._sparse_batches = 0
        self._sparse_batched_requests = 0
        self._sparse_assembly_seconds = 0.0

    # -- mutators (called by the engine) ---------------------------------
    def record_submitted(self, count: int = 1) -> None:
        now = time.perf_counter()
        with self._lock:
            self._submitted += count
            self._queue_depth += count
            if self._first_submit is None:
                self._first_submit = now

    def record_dequeued(self, count: int) -> None:
        with self._lock:
            self._queue_depth -= count

    def record_rejected(self, count: int = 1) -> None:
        """A request failed before it ever reached the queue."""
        with self._lock:
            self._submitted += count
            self._failed += count

    def record_queue_rejected(self, count: int) -> None:
        """Requests counted as submitted whose enqueue was then refused."""
        with self._lock:
            self._queue_depth -= count
            self._failed += count

    def record_dispatch(self, requests: int, batched: bool) -> None:
        with self._lock:
            self._dispatches += 1
            if batched:
                self._batched_requests += requests
            else:
                self._fallback_requests += requests

    def record_sparse_dispatch(self, requests: int, seconds: float) -> None:
        """One stacked dispatch executed on the block-diagonal sparse lane.

        Called *in addition to* :meth:`record_dispatch` for the same chunk:
        the sparse counters are a lane-attribution breakdown of the batched
        totals, not a separate population.
        """
        with self._lock:
            self._sparse_batches += 1
            self._sparse_batched_requests += requests
            self._sparse_assembly_seconds += seconds

    def record_done(self, latency: float, failed: bool) -> None:
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            self._latencies.append(latency)
            self._last_done = time.perf_counter()

    def record_memo_hit(self, latency: float, memo_bytes: int) -> None:
        """One request answered straight from the result memo.

        The hit is a completion like any other (it joins the latency
        reservoir and the completed count) but never reached the queue, so
        the queue-depth increment from :meth:`record_submitted` is undone
        here.
        """
        with self._lock:
            self._memo_hits += 1
            self._memo_bytes = memo_bytes
            self._queue_depth -= 1
            self._completed += 1
            self._latencies.append(latency)
            self._last_done = time.perf_counter()

    def record_memo_miss(self, memo_bytes: int) -> None:
        with self._lock:
            self._memo_misses += 1
            self._memo_bytes = memo_bytes

    def set_workers(self, workers: int) -> None:
        with self._lock:
            self._workers = workers

    # -- robustness mutators ---------------------------------------------
    def record_expired(self, at_submit: bool = False) -> None:
        """One request shed on an expired deadline.

        ``at_submit`` sheds never reached the queue, so they account their
        own submission and failure here; a shed at dequeue or dispatch was
        already counted submitted, and its failure is recorded by the
        normal finish path — only the shed counter is added.
        """
        with self._lock:
            self._shed_expired += 1
            if at_submit:
                self._submitted += 1
                self._failed += 1

    def record_overloaded(self) -> None:
        """One request rejected by admission control (never queued)."""
        with self._lock:
            self._shed_overload += 1
            self._submitted += 1
            self._failed += 1

    def record_dispatch_retry(self) -> None:
        with self._lock:
            self._dispatch_retries += 1

    def record_respawn(self) -> None:
        with self._lock:
            self._worker_respawns += 1

    def record_watchdog_kill(self) -> None:
        with self._lock:
            self._watchdog_kills += 1

    def record_quarantine_trip(self) -> None:
        with self._lock:
            self._quarantine_trips += 1

    def record_quarantined(self) -> None:
        """One request answered on the quarantine path (sandbox/rejection)."""
        with self._lock:
            self._quarantined_requests += 1

    def set_quarantine_open(self, count: int) -> None:
        with self._lock:
            self._quarantine_open = count

    def set_heartbeat_age(self, age: Optional[float]) -> None:
        with self._lock:
            self._heartbeat_age = age

    def record_cost(self, delta: float) -> None:
        """Adjust the backlog cost gauge (positive at intake, negative at
        retirement); clamped at zero so an accounting race can only
        under-report pressure, never wedge admission shut."""
        with self._lock:
            self._pending_cost = max(0.0, self._pending_cost + delta)

    def pending_depth(self) -> int:
        """The current queue-depth gauge (pooled admission control)."""
        with self._lock:
            return self._queue_depth

    def current_pending_cost(self) -> float:
        with self._lock:
            return self._pending_cost

    def record_done_many(self, latencies: list, failed: bool = False) -> None:
        """Record a whole dispatched chunk's completions in one lock trip."""
        if not latencies:
            return
        with self._lock:
            if failed:
                self._failed += len(latencies)
            else:
                self._completed += len(latencies)
            self._latencies.extend(latencies)
            self._last_done = time.perf_counter()

    # -- reader ----------------------------------------------------------
    def snapshot(self) -> EngineStatsSnapshot:
        now = time.perf_counter()
        with self._lock:
            finished = self._completed + self._failed
            coalesce = (finished / self._dispatches) if self._dispatches else 0.0
            elapsed = 0.0
            if self._first_submit is not None and self._last_done is not None:
                elapsed = self._last_done - self._first_submit
            throughput = (self._completed / elapsed) if elapsed > 0 else 0.0
            p50 = p95 = None
            if self._latencies:
                ordered = tuple(sorted(self._latencies))
                p50 = _percentile(ordered, 0.50)
                p95 = _percentile(ordered, 0.95)
            return EngineStatsSnapshot(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                queue_depth=self._queue_depth,
                dispatches=self._dispatches,
                batched_requests=self._batched_requests,
                fallback_requests=self._fallback_requests,
                coalesce_ratio=coalesce,
                throughput=throughput,
                latency_p50=p50,
                latency_p95=p95,
                memo_hits=self._memo_hits,
                memo_misses=self._memo_misses,
                memo_bytes=self._memo_bytes,
                workers=self._workers,
                shed_expired=self._shed_expired,
                shed_overload=self._shed_overload,
                dispatch_retries=self._dispatch_retries,
                worker_respawns=self._worker_respawns,
                watchdog_kills=self._watchdog_kills,
                quarantine_trips=self._quarantine_trips,
                quarantined_requests=self._quarantined_requests,
                quarantine_open=self._quarantine_open,
                heartbeat_age=self._heartbeat_age,
                pending_cost=self._pending_cost,
                sparse_batches=self._sparse_batches,
                sparse_batched_requests=self._sparse_batched_requests,
                sparse_assembly_seconds=self._sparse_assembly_seconds,
                started_epoch=self.anchor.epoch,
                snapshot_epoch=self.anchor.epoch_of(now),
                uptime_seconds=max(0.0, now - self.anchor.monotonic),
            )
