"""Throughput telemetry for the concurrent query service.

:class:`EngineStats` is the engine's single mutable telemetry object: every
counter mutation and every snapshot runs under one lock, so readers always
see a consistent state (a completion can never be visible in ``completed``
while its latency sample or its dispatch is still missing).  Snapshots are
frozen :class:`EngineStatsSnapshot` values — plain data, safe to hand to
monitoring code on any thread.

The derived figures follow the usual serving-layer conventions:

``coalesce_ratio``
    Requests executed per kernel dispatch, i.e. ``completed / dispatches``.
    ``1.0`` means no batching happened (every request ran alone); the whole
    point of the micro-batching scheduler is to push this well above 1 on
    concurrent streams.
``throughput``
    Completed requests per second of serving time, measured from the first
    submission to the most recent completion.
``latency_p50`` / ``latency_p95``
    Percentiles over a bounded reservoir of the most recent per-request
    latencies (submission to result delivery), so a long-lived engine's
    percentiles track current behaviour instead of averaging over its whole
    history.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

__all__ = ["EngineStats", "EngineStatsSnapshot"]


@dataclass(frozen=True)
class EngineStatsSnapshot:
    """One atomic reading of the engine's telemetry."""

    #: Requests accepted by ``submit`` / ``submit_many`` so far.
    submitted: int
    #: Requests whose future resolved successfully.
    completed: int
    #: Requests whose future resolved with an exception.
    failed: int
    #: Requests currently waiting in the queue (not yet dispatched).
    queue_depth: int
    #: Kernel dispatches issued: batched group executions plus per-instance
    #: fallback executions (each counts one).
    dispatches: int
    #: Requests that were served through a stacked batch of two or more.
    batched_requests: int
    #: Requests that ran per-instance (singleton groups, sparse-selected or
    #: non-batchable plans, and batch-execution rescues).
    fallback_requests: int
    #: Finished requests per kernel dispatch (1.0 = no coalescing).
    coalesce_ratio: float
    #: Completed requests per second of serving time.
    throughput: float
    #: Median / 95th-percentile request latency in seconds over the
    #: most recent requests (``None`` until something completed).
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    #: Requests answered from the cross-request result memo without any
    #: kernel execution (pooled engines; 0 with memoization off).
    memo_hits: int = 0
    #: Requests that consulted the memo and missed (and therefore executed).
    memo_misses: int = 0
    #: Result bytes currently retained by the memo.
    memo_bytes: int = 0
    #: Worker processes behind this engine (0 = in-process scheduler).
    workers: int = 0

    def render(self) -> str:
        """A one-line human-readable summary (used by benchmarks / examples)."""
        p50 = "-" if self.latency_p50 is None else f"{self.latency_p50 * 1e3:.2f}ms"
        p95 = "-" if self.latency_p95 is None else f"{self.latency_p95 * 1e3:.2f}ms"
        line = (
            f"served={self.completed} failed={self.failed} queued={self.queue_depth} "
            f"dispatches={self.dispatches} coalesce={self.coalesce_ratio:.1f}x "
            f"throughput={self.throughput:.0f}/s p50={p50} p95={p95}"
        )
        if self.workers:
            line += f" workers={self.workers}"
        if self.memo_hits or self.memo_misses:
            looked = self.memo_hits + self.memo_misses
            rate = self.memo_hits / looked if looked else 0.0
            line += (
                f" memo={self.memo_hits}/{looked} ({rate:.0%} hit, "
                f"{self.memo_bytes / 1e6:.1f}MB)"
            )
        return line


def _percentile(sorted_values: Tuple[float, ...], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sample."""
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


class EngineStats:
    """Lock-guarded accumulator behind :meth:`Engine.stats`.

    All mutators take the internal lock; nothing is published except through
    :meth:`snapshot`, which also computes the derived ratios under the same
    lock — so a snapshot can never pair counters from two different moments.
    """

    #: Latency samples retained for the percentile reservoir.  4096 recent
    #: requests bound both memory and the per-snapshot sort while keeping
    #: the percentiles meaningful for bursty serving workloads.
    RESERVOIR_SIZE = 4096

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._queue_depth = 0
        self._dispatches = 0
        self._batched_requests = 0
        self._fallback_requests = 0
        self._latencies: Deque[float] = deque(maxlen=self.RESERVOIR_SIZE)
        self._first_submit: Optional[float] = None
        self._last_done: Optional[float] = None
        self._memo_hits = 0
        self._memo_misses = 0
        self._memo_bytes = 0
        self._workers = 0

    # -- mutators (called by the engine) ---------------------------------
    def record_submitted(self, count: int = 1) -> None:
        now = time.perf_counter()
        with self._lock:
            self._submitted += count
            self._queue_depth += count
            if self._first_submit is None:
                self._first_submit = now

    def record_dequeued(self, count: int) -> None:
        with self._lock:
            self._queue_depth -= count

    def record_rejected(self, count: int = 1) -> None:
        """A request failed before it ever reached the queue."""
        with self._lock:
            self._submitted += count
            self._failed += count

    def record_queue_rejected(self, count: int) -> None:
        """Requests counted as submitted whose enqueue was then refused."""
        with self._lock:
            self._queue_depth -= count
            self._failed += count

    def record_dispatch(self, requests: int, batched: bool) -> None:
        with self._lock:
            self._dispatches += 1
            if batched:
                self._batched_requests += requests
            else:
                self._fallback_requests += requests

    def record_done(self, latency: float, failed: bool) -> None:
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            self._latencies.append(latency)
            self._last_done = time.perf_counter()

    def record_memo_hit(self, latency: float, memo_bytes: int) -> None:
        """One request answered straight from the result memo.

        The hit is a completion like any other (it joins the latency
        reservoir and the completed count) but never reached the queue, so
        the queue-depth increment from :meth:`record_submitted` is undone
        here.
        """
        with self._lock:
            self._memo_hits += 1
            self._memo_bytes = memo_bytes
            self._queue_depth -= 1
            self._completed += 1
            self._latencies.append(latency)
            self._last_done = time.perf_counter()

    def record_memo_miss(self, memo_bytes: int) -> None:
        with self._lock:
            self._memo_misses += 1
            self._memo_bytes = memo_bytes

    def set_workers(self, workers: int) -> None:
        with self._lock:
            self._workers = workers

    def record_done_many(self, latencies: list, failed: bool = False) -> None:
        """Record a whole dispatched chunk's completions in one lock trip."""
        if not latencies:
            return
        with self._lock:
            if failed:
                self._failed += len(latencies)
            else:
                self._completed += len(latencies)
            self._latencies.extend(latencies)
            self._last_done = time.perf_counter()

    # -- reader ----------------------------------------------------------
    def snapshot(self) -> EngineStatsSnapshot:
        with self._lock:
            finished = self._completed + self._failed
            coalesce = (finished / self._dispatches) if self._dispatches else 0.0
            elapsed = 0.0
            if self._first_submit is not None and self._last_done is not None:
                elapsed = self._last_done - self._first_submit
            throughput = (self._completed / elapsed) if elapsed > 0 else 0.0
            p50 = p95 = None
            if self._latencies:
                ordered = tuple(sorted(self._latencies))
                p50 = _percentile(ordered, 0.50)
                p95 = _percentile(ordered, 0.95)
            return EngineStatsSnapshot(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                queue_depth=self._queue_depth,
                dispatches=self._dispatches,
                batched_requests=self._batched_requests,
                fallback_requests=self._fallback_requests,
                coalesce_ratio=coalesce,
                throughput=throughput,
                latency_p50=p50,
                latency_p95=p95,
                memo_hits=self._memo_hits,
                memo_misses=self._memo_misses,
                memo_bytes=self._memo_bytes,
                workers=self._workers,
            )
