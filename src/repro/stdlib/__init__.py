"""Standard library of for-MATLANG expressions from the paper.

Every function in this subpackage *builds an expression*; nothing is evaluated
here.  The expressions mirror the constructions of Sections 3, 4 and 6 and the
appendices:

* :mod:`repro.stdlib.basic` — ones / diag / identity and their for-loop
  re-definitions (Examples 3.1 and 3.2);
* :mod:`repro.stdlib.order` — canonical-vector order: ``e_min``, ``e_max``,
  ``S_<``, ``S_<=``, ``succ``, ``Prev`` / ``Next`` (Section 3.2, Appendix B.1);
* :mod:`repro.stdlib.aggregates` — traces, row/column sums, diagonal product;
* :mod:`repro.stdlib.graphs` — transitive closure and clique detection
  (Examples 3.3 and 3.5, Section 6.3);
* :mod:`repro.stdlib.linalg` — LU / PLU decomposition, triangular inversion,
  Csanky's determinant and inverse (Section 4, Appendix C).

Where the appendix constructions contain typographical slips (the ``S_<=``
scratch-column construction and the missing accumulator in ``neq``) the
library uses equivalent corrected expressions; the deviations are documented
on the functions and in DESIGN.md.
"""

from repro.stdlib.aggregates import (
    column_sums,
    diagonal_product,
    entry,
    row_sums,
    total_sum,
    trace,
)
from repro.stdlib.basic import (
    diag_via_for,
    identity_like,
    ones_like,
    ones_matrix_like,
    ones_via_for,
    scalar_entry,
)
from repro.stdlib.graphs import (
    four_clique_count,
    has_four_clique,
    k_clique_count,
    reachability_from,
    shortest_path_matrix,
    transitive_closure_floyd_warshall,
    transitive_closure_indicator,
    transitive_closure_product,
    triangle_count,
)
from repro.stdlib.linalg import (
    characteristic_coefficients,
    csanky_determinant,
    csanky_inverse,
    lower_triangular_inverse,
    lu_lower,
    lu_lower_inverse,
    lu_upper,
    matrix_power,
    matrix_power_fixed,
    plu_transform,
    plu_upper,
    power_sum,
    power_trace_vector,
    solve_lower_triangular,
    upper_triangular_inverse,
)
from repro.stdlib.order import (
    e_max,
    e_min,
    get_next_matrix,
    get_prev_matrix,
    is_max,
    is_min,
    next_matrix,
    next_vector,
    prev_matrix,
    prev_vector,
    s_less,
    s_less_equal,
    succ,
    succ_strict,
)

__all__ = [
    "characteristic_coefficients",
    "column_sums",
    "csanky_determinant",
    "csanky_inverse",
    "diag_via_for",
    "diagonal_product",
    "e_max",
    "e_min",
    "entry",
    "four_clique_count",
    "get_next_matrix",
    "get_prev_matrix",
    "has_four_clique",
    "identity_like",
    "is_max",
    "is_min",
    "k_clique_count",
    "lower_triangular_inverse",
    "lu_lower",
    "lu_lower_inverse",
    "lu_upper",
    "matrix_power",
    "matrix_power_fixed",
    "next_matrix",
    "next_vector",
    "ones_like",
    "ones_matrix_like",
    "ones_via_for",
    "plu_transform",
    "plu_upper",
    "power_sum",
    "power_trace_vector",
    "prev_matrix",
    "prev_vector",
    "reachability_from",
    "row_sums",
    "s_less",
    "s_less_equal",
    "scalar_entry",
    "solve_lower_triangular",
    "shortest_path_matrix",
    "succ",
    "succ_strict",
    "total_sum",
    "trace",
    "transitive_closure_floyd_warshall",
    "transitive_closure_indicator",
    "transitive_closure_product",
    "triangle_count",
    "upper_triangular_inverse",
]
