"""Aggregation expressions: traces, sums and the diagonal product.

These are small idiomatic expressions used throughout the paper: the trace is
the canonical sum-MATLANG aggregate, and the product of the diagonal entries
(Example 6.6) is the canonical FO-MATLANG expression that already escapes
sum-MATLANG because its value can be exponential in the dimension.
"""

from __future__ import annotations

from typing import Union

from repro.matlang.ast import Expression, Var
from repro.matlang.builder import had, ones, ssum, var

ExpressionLike = Union[Expression, str]


def _as_expr(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    return Var(value)


def trace(matrix: ExpressionLike, iterator: str = "_tv") -> Expression:
    """``tr(A) = Sigma v. v^T . A . v`` (sum-MATLANG).

    The plan compiler recognises this body shape and fuses the whole
    quantifier into a single ``trace`` kernel op
    (:mod:`repro.matlang.rewrites`), so evaluation never unrolls the loop.
    """
    expr = _as_expr(matrix)
    v = var(iterator)
    return ssum(iterator, v.T @ expr @ v)


def diagonal_product(matrix: ExpressionLike, iterator: str = "_dv") -> Expression:
    """Example 6.6: the product of the diagonal entries (FO-MATLANG).

    ``Pi-o v. v^T . A . v`` multiplies the diagonal entries pointwise; on a
    ``1 x 1`` result the Hadamard product coincides with ordinary product.
    Compiles to the fused ``diag_product`` plan op.
    """
    expr = _as_expr(matrix)
    v = var(iterator)
    return had(iterator, v.T @ expr @ v)


def row_sums(matrix: ExpressionLike) -> Expression:
    """The column vector of row sums: ``A . 1(A^T)``."""
    expr = _as_expr(matrix)
    return expr @ ones(expr.T)


def column_sums(matrix: ExpressionLike) -> Expression:
    """The column vector of column sums: ``A^T . 1(A)``."""
    expr = _as_expr(matrix)
    return expr.T @ ones(expr)


def total_sum(matrix: ExpressionLike) -> Expression:
    """The sum of all entries: ``1(A)^T . A . 1(A^T)``."""
    expr = _as_expr(matrix)
    return ones(expr).T @ expr @ ones(expr.T)


def entry(matrix: ExpressionLike, row: Expression, col: Expression) -> Expression:
    """Positional access ``row^T . A . col`` for canonical vectors row, col."""
    return row.T @ _as_expr(matrix) @ col
