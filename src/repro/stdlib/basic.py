"""Basic building blocks: ones, diag, identity and their for-loop forms.

Examples 3.1 and 3.2 of the paper show that the MATLANG primitives ``1(e)``
and ``diag(e)`` are redundant in for-MATLANG.  Both the primitive forms and
the for-loop re-definitions are provided so the redundancy can be tested
(experiment E1).
"""

from __future__ import annotations

from typing import Union

from repro.matlang.ast import Diag, Expression, OneVector, Var
from repro.matlang.builder import forloop, hint, lit, var

ExpressionLike = Union[Expression, str]

DEFAULT_SYMBOL = "alpha"


def _as_expr(value: ExpressionLike) -> Expression:
    """Accept either an expression or a variable name."""
    if isinstance(value, Expression):
        return value
    return Var(value)


def ones_like(operand: ExpressionLike) -> Expression:
    """The MATLANG primitive ``1(e)``: the all-ones column vector of e's height."""
    return OneVector(_as_expr(operand))


def identity_like(operand: ExpressionLike) -> Expression:
    """The identity matrix ``e_Id`` of the row dimension of ``e``.

    Expressed as ``diag(1(e))``, which stays inside the MATLANG core.
    """
    return Diag(OneVector(_as_expr(operand)))


def ones_matrix_like(operand: ExpressionLike) -> Expression:
    """The all-ones matrix of the same type as ``e``: ``1(e) . 1(e^T)^T``."""
    expr = _as_expr(operand)
    return OneVector(expr) @ OneVector(expr.T).T


def ones_via_for(symbol: str = DEFAULT_SYMBOL, iterator: str = "_v", accumulator: str = "_X") -> Expression:
    """Example 3.1: the ones vector defined with a for-loop.

    ``for v, X. X + v`` evaluated over dimension ``n`` adds up all canonical
    vectors, producing the all-ones vector of type ``(symbol, 1)``.
    """
    loop = forloop(iterator, accumulator, var(accumulator) + var(iterator))
    return hint(loop, symbol, "1")


def diag_via_for(
    operand: ExpressionLike,
    iterator: str = "_v",
    accumulator: str = "_X",
) -> Expression:
    """Example 3.2: ``diag(e)`` defined with a for-loop.

    ``for v, X. X + (v^T . e) x (v . v^T)`` places the i-th entry of the
    column vector ``e`` at position ``(i, i)``.
    """
    expr = _as_expr(operand)
    v = var(iterator)
    body = var(accumulator) + (v.T @ expr) * (v @ v.T)
    return forloop(iterator, accumulator, body)


def scalar_entry(matrix: ExpressionLike, row: Expression, col: Expression) -> Expression:
    """The ``1 x 1`` expression ``row^T . M . col`` extracting one entry.

    ``row`` and ``col`` are expected to evaluate to canonical vectors; this is
    the paper's idiom for positional access.
    """
    return row.T @ _as_expr(matrix) @ col


def zero_scalar() -> Expression:
    """The constant ``0`` as a 1x1 expression."""
    return lit(0)


def one_scalar() -> Expression:
    """The constant ``1`` as a 1x1 expression."""
    return lit(1)
