"""Graph queries expressed in (fragments of) for-MATLANG.

The paper uses three graph problems as running examples of expressive power:

* the 4-clique query (Example 3.3) — expressible in sum-MATLANG but not in
  MATLANG, which witnesses the strict inclusion of Corollary 6.2;
* the transitive closure via the Floyd-Warshall algorithm (Example 3.5) —
  expressible in for-MATLANG but in no fragment equivalent to RA+_K;
* the transitive closure via ``f_>0((I + A)^n)`` (Section 6.3) — expressible
  in prod-MATLANG extended with ``f_>0``.

All expressions assume the graph is given as the adjacency matrix assigned to
a square matrix variable.
"""

from __future__ import annotations

from itertools import combinations
from typing import Union

from repro.matlang.ast import Expression, Var
from repro.matlang.builder import apply, forloop, lit, prod, ssum, var
from repro.stdlib.basic import identity_like

ExpressionLike = Union[Expression, str]


def _as_expr(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    return Var(value)


# ----------------------------------------------------------------------
# Transitive closure
# ----------------------------------------------------------------------
def transitive_closure_floyd_warshall(
    adjacency: ExpressionLike = "A",
) -> Expression:
    """Example 3.5: the Floyd-Warshall expression ``e_FW``.

    ``for v_k, X_1 = A. X_1 + Sigma v_i. Sigma v_j.
    (v_i^T . X_1 . v_k . v_k^T . X_1 . v_j) x (v_i . v_j^T)``

    Over the reals the result counts routes, so an entry ``(i, j)`` is
    non-zero exactly when ``j`` is reachable from ``i`` by a non-empty path;
    over the boolean semiring the result is exactly the irreflexive
    transitive closure.
    """
    matrix = _as_expr(adjacency)
    vk, vi, vj = var("_fwk"), var("_fwi"), var("_fwj")
    x1 = var("_fwX")
    weight = vi.T @ x1 @ vk @ vk.T @ x1 @ vj
    inner = ssum("_fwi", ssum("_fwj", weight * (vi @ vj.T)))
    return forloop("_fwk", "_fwX", x1 + inner, init=matrix)


def transitive_closure_indicator(adjacency: ExpressionLike = "A") -> Expression:
    """The 0/1 transitive closure: ``f_>0`` applied to the Floyd-Warshall result."""
    return apply("gt0", transitive_closure_floyd_warshall(adjacency))


def transitive_closure_product(adjacency: ExpressionLike = "A", iterator: str = "_tcv") -> Expression:
    """Section 6.3: ``e_TC(V) = f_>0(Pi v. (I + V))``.

    The matrix-product quantifier computes ``(I + A)^n`` whose non-zero
    entries coincide with the reflexive-transitive closure; ``f_>0`` turns the
    path counts into a 0/1 matrix.  Lives in prod-MATLANG[f_>0].

    The quantifier body is loop-invariant, so the plan compiler fuses the
    whole loop into a ``power`` op computed by repeated squaring —
    ``O(log n)`` matrix products instead of ``n`` — and over the boolean
    semiring the sparse CSR execution backend keeps the iterated product
    sparse end to end.
    """
    matrix = _as_expr(adjacency)
    body = identity_like(matrix) + matrix
    return apply("gt0", prod(iterator, body))


def shortest_path_matrix(adjacency: ExpressionLike = "A", iterator: str = "_spv") -> Expression:
    """All-pairs shortest-path costs: ``Pi v. (I + A)`` over min-plus.

    Over the min-plus semiring ``+`` is entrywise ``min`` and the matrix
    product is the tropical one, so ``I + A`` is the weight matrix with free
    self-loops and its ``n``-th tropical power holds the cheapest cost of a
    walk of length at most ``n`` — the shortest-path distance (``inf`` where
    no path exists).  The same expression evaluated over the booleans is
    reflexive-transitive reachability: the semiring parameterises the
    meaning, exactly the Section 6 story.  Lives in prod-MATLANG.
    Like :func:`transitive_closure_product`, the invariant body fuses into
    a repeated-squaring ``power`` plan op.
    """
    matrix = _as_expr(adjacency)
    return prod(iterator, identity_like(matrix) + matrix)


def reachability_from(
    source: Expression,
    adjacency: ExpressionLike = "A",
    iterator: str = "_rv",
) -> Expression:
    """The 0/1 column vector of vertices reachable from ``source``.

    ``source`` should evaluate to a canonical vector; the expression is
    ``f_>0(((I + A)^n)^T . source)`` and lives in prod-MATLANG[f_>0].
    """
    matrix = _as_expr(adjacency)
    closure = prod(iterator, identity_like(matrix) + matrix)
    return apply("gt0", closure.T @ source)


# ----------------------------------------------------------------------
# Cliques
# ----------------------------------------------------------------------
def _all_distinct(vertices) -> Expression:
    """The paper's ``g``: the product of ``(1 - u^T . v)`` over all pairs.

    Evaluates to 1 when all the canonical vectors are pairwise different and
    to 0 otherwise.
    """
    factors = None
    for left, right in combinations(vertices, 2):
        factor = lit(1) + lit(-1) * (left.T @ right)
        factors = factor if factors is None else factors @ factor
    return factors if factors is not None else lit(1)


def _all_adjacent(matrix: Expression, vertices) -> Expression:
    """The product of ``u^T . A . v`` over all pairs of chosen vertices."""
    factors = None
    for left, right in combinations(vertices, 2):
        factor = left.T @ matrix @ right
        factors = factor if factors is None else factors @ factor
    return factors if factors is not None else lit(1)


def k_clique_count(adjacency: ExpressionLike, k: int, prefix: str = "_cq") -> Expression:
    """The number of ordered k-cliques, as a nested sum-MATLANG expression.

    Generalises Example 3.3: for an undirected graph without self-loops the
    expression evaluates to ``k!`` times the number of k-cliques, so it is
    non-zero exactly when a k-clique exists.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    matrix = _as_expr(adjacency)
    names = [f"{prefix}{index}" for index in range(k)]
    vertices = [var(name) for name in names]
    body = _all_adjacent(matrix, vertices) @ _all_distinct(vertices)
    expression = body
    for name in reversed(names):
        expression = ssum(name, expression)
    return expression


def four_clique_count(adjacency: ExpressionLike = "A") -> Expression:
    """Example 3.3: the 4-clique expression (24 x the number of 4-cliques)."""
    return k_clique_count(adjacency, 4)


def has_four_clique(adjacency: ExpressionLike = "A") -> Expression:
    """``f_>0`` of the 4-clique count: 1 iff the graph contains a 4-clique."""
    return apply("gt0", four_clique_count(adjacency))


def triangle_count(adjacency: ExpressionLike = "A") -> Expression:
    """The number of ordered triangles (6 x the number of triangles)."""
    return k_clique_count(adjacency, 3)
