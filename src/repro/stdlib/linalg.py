"""Classical linear algebra in for-MATLANG (Section 4 and Appendix C).

This module contains the expression-level implementations of

* LU decomposition by Gaussian elimination (Proposition 4.1),
* LU decomposition with row pivoting, PLU (Proposition 4.2),
* triangular matrix inversion (Lemma C.1),
* Csanky's algorithm for the characteristic polynomial, determinant and
  matrix inverse (Proposition 4.3).

All constructions only use the operators of for-MATLANG together with the
pointwise functions ``f_/`` (division, with ``x/0 := 0``) and — for pivoting
only — ``f_>0``, exactly as stated in the paper.

Implementation notes (documented deviations from the appendix text):

* The appendix recovers ``L`` from the accumulated Gauss transform
  ``E = T_{n-1} ... T_1`` by flipping the signs below the diagonal.  That
  identity only holds when the cross terms between reduction steps vanish,
  which they do for ``L = E^{-1}`` written as a product in increasing order
  but not for ``E`` itself; :func:`lu_lower` therefore computes ``L`` as the
  triangular inverse of ``E`` (Lemma C.1), which stays inside
  for-MATLANG[f_/].
* The appendix expression ``neq`` (first non-zero entry of a vector) omits
  the ``+ X`` term that keeps an already-found pivot; :func:`_first_nonzero`
  restores it.
* Csanky's algorithm is implemented through Newton's identities in the form
  ``k c_k + sum_{i<k} c_i p_{k-i} = -p_k`` with ``p_k = tr(A^k)``; this is the
  "slightly different, but equivalent, system of equations" the appendix
  alludes to, spelled out so the reproduction is numerically checkable.
"""

from __future__ import annotations

from typing import Union

from repro.matlang.ast import Expression, Var
from repro.matlang.builder import apply, diag, forloop, lit, ones, prod, ssum, var
from repro.stdlib.basic import DEFAULT_SYMBOL, identity_like
from repro.stdlib.order import e_max, is_max, prev_matrix, get_next_matrix, succ, succ_strict

ExpressionLike = Union[Expression, str]


def _as_expr(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    return Var(value)


def _one_minus(expression: Expression) -> Expression:
    """``1 - e`` for a 1x1 expression ``e``."""
    return lit(1) + lit(-1) * expression


# ----------------------------------------------------------------------
# Matrix powers and power sums
# ----------------------------------------------------------------------
def matrix_power_fixed(matrix: ExpressionLike, exponent: int) -> Expression:
    """``A^k`` for a fixed non-negative integer ``k`` (MATLANG core)."""
    expr = _as_expr(matrix)
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if exponent == 0:
        return identity_like(expr)
    result = expr
    for _ in range(exponent - 1):
        result = result @ expr
    return result


def matrix_power(
    matrix: ExpressionLike,
    index_vector: Expression,
    symbol: str = DEFAULT_SYMBOL,
    iterator: str = "_pw",
) -> Expression:
    """``e_pow(V, v)``: the power ``A^i`` where ``index_vector`` is ``b_i``.

    ``Pi w. succ(w, v) x V + (1 - succ(w, v)) x I`` multiplies one copy of
    ``V`` for every ``w <= v`` (Appendix C.3).
    """
    expr = _as_expr(matrix)
    w = var(iterator)
    condition = succ(w, index_vector, symbol)
    body = condition * expr + _one_minus(condition) * identity_like(expr)
    return prod(iterator, body)


def power_sum(matrix: ExpressionLike, iterator: str = "_ps") -> Expression:
    """``I + A + A^2 + ... + A^n`` (the series used for triangular inversion).

    Built with the order-free loop ``for v, X. X . A + A`` which accumulates
    ``A + A^2 + ... + A^n``, plus the identity.
    """
    expr = _as_expr(matrix)
    accumulator = f"{iterator}X"
    loop = forloop(iterator, accumulator, var(accumulator) @ expr + expr)
    return identity_like(expr) + loop


def power_trace_vector(
    matrix: ExpressionLike,
    symbol: str = DEFAULT_SYMBOL,
) -> Expression:
    """The column vector ``(tr(A^1), tr(A^2), ..., tr(A^n))^T`` (sum over traces)."""
    expr = _as_expr(matrix)
    v = var("_ptv")
    w = var("_ptw")
    power = matrix_power(expr, v, symbol, iterator="_ptp")
    trace_of_power = ssum("_ptw", w.T @ power @ w)
    return ssum("_ptv", trace_of_power * v)


# ----------------------------------------------------------------------
# Triangular inversion (Lemma C.1)
# ----------------------------------------------------------------------
def _diagonal_of(matrix: Expression, iterator: str = "_dgv") -> Expression:
    """``e_getDiag``: the diagonal part of a square matrix as a matrix."""
    v = var(iterator)
    return ssum(iterator, (v.T @ matrix @ v) * (v @ v.T))


def _diagonal_inverse(matrix: Expression, iterator: str = "_div") -> Expression:
    """``e_diagInverse``: the diagonal matrix of reciprocal diagonal entries."""
    v = var(iterator)
    reciprocal = apply("div", lit(1), v.T @ matrix @ v)
    return ssum(iterator, reciprocal * (v @ v.T))


def upper_triangular_inverse(matrix: ExpressionLike) -> Expression:
    """Lemma C.1: the inverse of an invertible upper triangular matrix.

    Writes ``A = D (I + D^{-1} T)`` with ``D`` the diagonal and ``T`` the
    strictly triangular part; ``D^{-1} T`` is nilpotent so the Neumann series
    ``sum_i (-D^{-1} T)^i`` terminates and equals ``(I + D^{-1} T)^{-1}``.
    """
    expr = _as_expr(matrix)
    diagonal_inverse = _diagonal_inverse(expr)
    strictly = expr + lit(-1) * _diagonal_of(expr)
    series = power_sum(lit(-1) * (diagonal_inverse @ strictly), iterator="_uti")
    return series @ diagonal_inverse


def lower_triangular_inverse(matrix: ExpressionLike) -> Expression:
    """Lemma C.1: the inverse of an invertible lower triangular matrix."""
    expr = _as_expr(matrix)
    return upper_triangular_inverse(expr.T).T


def solve_lower_triangular(matrix: ExpressionLike, rhs: ExpressionLike) -> Expression:
    """``L^{-1} . b`` — forward substitution as an expression."""
    return lower_triangular_inverse(matrix) @ _as_expr(rhs)


# ----------------------------------------------------------------------
# LU decomposition (Proposition 4.1)
# ----------------------------------------------------------------------
def _column_below(matrix: Expression, pivot: Expression, symbol: str, iterator: str = "_clv") -> Expression:
    """``col(V, y)``: column ``y`` of ``V`` with entries at positions <= y zeroed."""
    v = var(iterator)
    accumulator = f"{iterator}X"
    entry = succ_strict(pivot, v, symbol) * ((v.T @ matrix @ pivot) * v)
    return forloop(iterator, accumulator, entry + var(accumulator))


def _column_from(matrix: Expression, pivot: Expression, symbol: str, iterator: str = "_cle") -> Expression:
    """``coleq(V, y)``: column ``y`` of ``V`` with entries at positions < y zeroed.

    Same as :func:`_column_below` but using ``succ`` instead of ``succ^+`` so
    the pivot entry itself is kept (needed for pivot search).
    """
    v = var(iterator)
    accumulator = f"{iterator}X"
    entry = succ(pivot, v, symbol) * ((v.T @ matrix @ pivot) * v)
    return forloop(iterator, accumulator, entry + var(accumulator))


def _reduce_step(matrix: Expression, pivot: Expression, symbol: str) -> Expression:
    """``reduce(V, y) = I + f_/(col(V, y), -(y^T V y) . 1(y)) . y^T``.

    The Gauss transform ``T_y`` that zeroes column ``y`` below the diagonal.
    """
    column = _column_below(matrix, pivot, symbol)
    pivot_value = pivot.T @ matrix @ pivot
    denominator = (lit(-1) @ pivot_value) * ones(pivot)
    multipliers = apply("div", column, denominator)
    return identity_like(matrix) + multipliers @ pivot.T


def lu_lower_inverse(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``E = T_n ... T_1`` such that ``E . A = U`` (the accumulated transform).

    ``for y, X = I. reduce(X . V, y) . X`` — Proposition 4.1.
    """
    expr = _as_expr(matrix)
    y = var("_luy")
    x = var("_luX")
    body = _reduce_step(x @ expr, y, symbol) @ x
    return forloop("_luy", "_luX", body, init=identity_like(expr))


def lu_upper(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``e_U(V) = (for y, X = I. reduce(X . V, y) . X) . V`` — the upper factor."""
    expr = _as_expr(matrix)
    return lu_lower_inverse(expr, symbol) @ expr


def lu_lower(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The unit lower triangular factor ``L`` with ``A = L . U``.

    ``L`` is the inverse of the accumulated transform ``E`` returned by
    :func:`lu_lower_inverse`; since ``E`` is unit lower triangular its inverse
    is computed with Lemma C.1 inside for-MATLANG[f_/].
    """
    return lower_triangular_inverse(lu_lower_inverse(matrix, symbol))


# ----------------------------------------------------------------------
# PLU decomposition (Proposition 4.2)
# ----------------------------------------------------------------------
def _first_nonzero(
    vector: Expression,
    fallback: Expression,
    symbol: str = DEFAULT_SYMBOL,
    iterator: str = "_nzv",
) -> Expression:
    """``neq(a, u)``: the canonical vector of the first non-zero entry of ``a``.

    Returns ``fallback`` when every entry of ``a`` is zero.  Compared to the
    appendix the accumulator ``X`` is added back into the update so that an
    already found position is preserved across iterations.
    """
    v = var(iterator)
    accumulator = f"{iterator}X"
    x = var(accumulator)
    not_found = _one_minus(ones(v).T @ x)
    hit = apply("gt0", apply("square", v.T @ vector))
    take_current = (not_found @ hit) * v
    take_fallback = (is_max(v, symbol) @ not_found @ _one_minus(hit)) * fallback
    return forloop(iterator, accumulator, x + take_current + take_fallback)


def _pivot_permutation(matrix: Expression, pivot: Expression, symbol: str) -> Expression:
    """``e_Pu(A, u) = I - w . w^T`` with ``w = u - neq(coleq(A, u), u)``.

    The permutation that swaps row ``u`` with the first row at or below ``u``
    whose entry in column ``u`` is non-zero (the identity when no swap is
    needed or possible).
    """
    column = _column_from(matrix, pivot, symbol)
    target = _first_nonzero(column, pivot, symbol)
    difference = pivot + lit(-1) * target
    return identity_like(matrix) + lit(-1) * (difference @ difference.T)


def _reduce_step_guarded(matrix: Expression, pivot: Expression, symbol: str) -> Expression:
    """The pivoting-aware reduction step of Appendix C.2.

    When the pivot entry is zero the step degenerates to the identity (the
    division falls back to dividing by ``1(y)`` so nothing blows up).
    """
    column = _column_below(matrix, pivot, symbol)
    pivot_value = pivot.T @ matrix @ pivot
    pivot_nonzero = apply("gt0", apply("square", pivot_value))
    denominator = (
        (lit(-1) @ pivot_value) * ones(pivot)
        + _one_minus(pivot_nonzero) * ones(pivot)
    )
    multipliers = apply("div", column, denominator)
    return identity_like(matrix) + pivot_nonzero * (multipliers @ pivot.T)


def plu_transform(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``e_{L^{-1} P}(V)``: the transform ``E = L^{-1} . P`` with ``E . A = U``.

    ``for v, X = I. reduce(P_v(X V, v) . X . V, v) . P_v(X V, v) . X`` where
    ``P_v`` performs the row interchange needed at step ``v``.
    """
    expr = _as_expr(matrix)
    v = var("_plv")
    x = var("_plX")
    current = x @ expr
    permutation = _pivot_permutation(current, v, symbol)
    body = _reduce_step_guarded(permutation @ current, v, symbol) @ permutation @ x
    return forloop("_plv", "_plX", body, init=identity_like(expr))


def plu_upper(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``e_U(V) = e_{L^{-1} P}(V) . V``: the upper triangular factor of PLU."""
    expr = _as_expr(matrix)
    return plu_transform(expr, symbol) @ expr


# ----------------------------------------------------------------------
# Csanky's algorithm (Proposition 4.3)
# ----------------------------------------------------------------------
def _index_vector(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The column vector ``(1, 2, ..., n)^T``: position i holds its index."""
    v = var("_ixv")
    w = var("_ixw")
    count_below = ssum("_ixw", succ(w, v, symbol))
    return ssum("_ixv", count_below * v)


def _shift_down(vector: Expression, offset_vector: Expression, symbol: str) -> Expression:
    """``e_shift``: shift ``vector`` down by ``index(offset_vector)`` positions."""
    w = var("_shw")
    moved = get_next_matrix(offset_vector, symbol) @ w
    return ssum("_shw", (w.T @ vector) * moved)


def _newton_matrix(matrix: Expression, symbol: str) -> Expression:
    """The lower triangular Newton system matrix ``S``.

    ``S[k, k] = k`` and ``S[k, j] = p_{k-j}`` for ``j < k`` where
    ``p_i = tr(A^i)``; the coefficient vector ``c`` of the characteristic
    polynomial satisfies ``S . c = -p``.
    """
    traces = power_trace_vector(matrix, symbol)
    v = var("_nwv")
    shifted_columns = ssum("_nwv", _shift_down(traces, v, symbol) @ v.T)
    return diag(_index_vector(symbol)) + shifted_columns


def characteristic_coefficients(
    matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL
) -> Expression:
    """The vector ``(c_1, ..., c_n)^T`` of characteristic polynomial coefficients.

    Coefficients of ``det(xI - A) = x^n + c_1 x^{n-1} + ... + c_n``, obtained
    by solving the Newton identities with the triangular inversion of
    Lemma C.1; lives in for-MATLANG[f_/].
    """
    expr = _as_expr(matrix)
    newton = _newton_matrix(expr, symbol)
    traces = power_trace_vector(expr, symbol)
    return lit(-1) * (lower_triangular_inverse(newton) @ traces)


def _minus_one_to_the_dimension(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``(-1)^n`` as a 1x1 expression: ``Pi w. (-1) x (w^T . w)``."""
    w = var("_sgw")
    return prod("_sgw", lit(-1) * (w.T @ w))


def csanky_determinant(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """Proposition 4.3: ``det(A) = (-1)^n c_n`` via Csanky's algorithm."""
    expr = _as_expr(matrix)
    coefficients = characteristic_coefficients(expr, symbol)
    last_coefficient = e_max(symbol).T @ coefficients
    return _minus_one_to_the_dimension(symbol) @ last_coefficient


def _inverse_power(matrix: Expression, index_vector: Expression, symbol: str) -> Expression:
    """``e_invPow(V, b_i) = A^{n-1-i}`` (Appendix C.3)."""
    w = var("_ivw")
    condition = succ(w, index_vector, symbol)
    last = is_max(w, symbol)
    inner = _one_minus(condition) * matrix + condition * identity_like(matrix)
    body = _one_minus(last) * inner + last * identity_like(matrix)
    return prod("_ivw", body)


def csanky_inverse(matrix: ExpressionLike = "A", symbol: str = DEFAULT_SYMBOL) -> Expression:
    """Proposition 4.3: the matrix inverse via Csanky's algorithm.

    ``A^{-1} = -(1 / c_n) (A^{n-1} + sum_{i=1}^{n-1} c_i A^{n-1-i})`` by
    Cayley-Hamilton; the sum over ``i`` is a Sigma loop that skips ``i = n``.
    """
    expr = _as_expr(matrix)
    coefficients = characteristic_coefficients(expr, symbol)
    last_coefficient = e_max(symbol).T @ coefficients

    leading_power = matrix_power(expr, prev_matrix(symbol) @ e_max(symbol), symbol, iterator="_cip")

    v = var("_civ")
    coefficient_i = coefficients.T @ v
    term = (_one_minus(is_max(v, symbol)) @ coefficient_i) * _inverse_power(expr, v, symbol)
    summed = ssum("_civ", term)

    scale = lit(-1) @ apply("div", lit(1), last_coefficient)
    return scale * (leading_power + summed)
