"""Order predicates on canonical vectors (Section 3.2 and Appendix B.1).

The for-loop iterates over the canonical vectors ``b_1, ..., b_n`` in a fixed
order, and this order can be made explicit inside the language.  The central
objects are

* ``e_max`` / ``e_min`` — the last / first canonical vector,
* ``Prev`` / ``Next`` — the shift matrices with ``Prev . b_i = b_{i-1}``,
* ``S_<`` and ``S_<=`` — the order matrices with ``b_i^T . S_<= . b_j = 1``
  iff ``i <= j``,
* the derived predicates ``succ``, ``succ_strict`` (written ``succ`` and
  ``succ^+`` in the paper), ``min`` and ``max``.

Deviation from the appendix: the appendix builds ``S_<=`` by using the last
column of the accumulator as scratch space.  That construction double-counts
the final column (its value ends up 2 instead of 1), so the library instead
builds the ``Prev`` matrix first (the appendix construction for ``Prev`` is
correct) and obtains ``S_< = Prev + Prev^2 + ... + Prev^n`` with the loop
``for v, X. X . Prev + Prev``, then ``S_<= = S_< + I``.  The resulting
matrices satisfy exactly the properties stated in Section 3.2 and are what
every later construction relies on.
"""

from __future__ import annotations

from repro.matlang.ast import Expression
from repro.matlang.builder import forloop, hint, lit, ones, var
from repro.stdlib.basic import DEFAULT_SYMBOL

#: Internal variable names; the leading underscore avoids collisions with
#: user variables, and nested loops use distinct suffixes.
_IT = "_ov"
_ACC = "_oX"


def e_max(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The last canonical vector ``b_n`` (the expression ``for v, X. v``)."""
    loop = forloop(_IT, _ACC, var(_IT))
    return hint(loop, symbol, "1")


def is_max(vector: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``max(u)``: 1 iff ``u`` is the last canonical vector."""
    return vector.T @ e_max(symbol)


def prev_matrix(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The ``Prev`` matrix with ``Prev . b_i = b_{i-1}`` and ``Prev . b_1 = 0``.

    Appendix B.1 construction: the last column of the accumulator holds the
    previously seen canonical vector; each iteration moves it into the column
    of the current vector.
    """
    v = var(_IT)
    x = var(_ACC)
    last = e_max(symbol)
    scratch = x @ last
    body = (
        x
        + ((lit(1) + lit(-1) * is_max(v, symbol)) * (v @ last.T))
        + lit(-1) * (scratch @ last.T)
        + scratch @ v.T
    )
    loop = forloop(_IT, _ACC, body)
    return hint(loop, symbol, symbol)


def next_matrix(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The ``Next`` matrix ``Prev^T`` with ``Next . b_i = b_{i+1}``."""
    return prev_matrix(symbol).T


def prev_vector(vector: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``prev(v) = Prev . v``."""
    return prev_matrix(symbol) @ vector


def next_vector(vector: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``next(v) = Next . v``."""
    return next_matrix(symbol) @ vector


def is_min(vector: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``min(u)``: 1 iff ``u`` is the first canonical vector.

    Defined as ``1 - 1(u)^T . Prev . u``: ``Prev . b_1`` is the zero vector,
    so the subtracted term is 0 exactly for ``b_1``.
    """
    return lit(1) + lit(-1) * (ones(vector).T @ prev_matrix(symbol) @ vector)


def e_min(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The first canonical vector ``b_1``: ``for v, X. X + min(v) x v``."""
    iterator = "_omv"
    accumulator = "_omX"
    body = var(accumulator) + is_min(var(iterator), symbol) * var(iterator)
    loop = forloop(iterator, accumulator, body)
    return hint(loop, symbol, "1")


def s_less(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The strict order matrix ``S_<`` with ``b_i^T . S_< . b_j = [i < j]``.

    Built as ``Prev + Prev^2 + ... + Prev^n`` by the loop
    ``for v, X. X . Prev + Prev``; the entry ``(i, j)`` of ``Prev^k`` is 1
    exactly when ``i = j - k``.
    """
    iterator = "_osv"
    accumulator = "_osX"
    prev = prev_matrix(symbol)
    body = var(accumulator) @ prev + prev
    loop = forloop(iterator, accumulator, body)
    return hint(loop, symbol, symbol)


def s_less_equal(symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The order matrix ``S_<=``: ``S_< + I`` where ``I = diag(1(S_<))``."""
    less = s_less(symbol)
    from repro.stdlib.basic import identity_like

    return less + identity_like(less)


def succ(left: Expression, right: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``succ(u, v) = u^T . S_<= . v``: 1 iff index(u) <= index(v)."""
    return left.T @ s_less_equal(symbol) @ right


def succ_strict(left: Expression, right: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``succ^+(u, v) = u^T . S_< . v``: 1 iff index(u) < index(v)."""
    return left.T @ s_less(symbol) @ right


def get_prev_matrix(vector: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``Prev^i`` for ``vector = b_i`` (Appendix B.1, ``e_getPrevMatrix``).

    ``Pi w. succ(w, v) x Prev + (1 - succ(w, v)) x I`` multiplies one ``Prev``
    factor for every ``w <= v``.
    """
    from repro.matlang.builder import prod
    from repro.stdlib.basic import identity_like

    iterator = "_ogw"
    w = var(iterator)
    prev = prev_matrix(symbol)
    condition = succ(w, vector, symbol)
    body = condition * prev + (lit(1) + lit(-1) * condition) * identity_like(prev)
    return prod(iterator, body)


def get_next_matrix(vector: Expression, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """``Next^i`` for ``vector = b_i`` (Appendix B.1, ``e_getNextMatrix``)."""
    from repro.matlang.builder import prod
    from repro.stdlib.basic import identity_like

    iterator = "_ogw"
    w = var(iterator)
    nxt = next_matrix(symbol)
    condition = succ(w, vector, symbol)
    body = condition * nxt + (lit(1) + lit(-1) * condition) * identity_like(nxt)
    return prod(iterator, body)


def min_plus(offset: int, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The canonical vector ``b_{1 + offset}`` (``e_min+i`` in the appendix)."""
    expression = e_min(symbol)
    nxt = next_matrix(symbol)
    for _ in range(offset):
        expression = nxt @ expression
    return expression


def max_minus(offset: int, symbol: str = DEFAULT_SYMBOL) -> Expression:
    """The canonical vector ``b_{n - offset}`` (``e_max-i`` in the appendix)."""
    expression = e_max(symbol)
    prev = prev_matrix(symbol)
    for _ in range(offset):
        expression = prev @ expression
    return expression
