"""Deterministic multi-tape Turing machines (Appendix D.1 substrate).

The paper's Theorem 5.1 relies on two Turing-machine ingredients: the
LOGSPACE machine that generates the circuit ``Phi_n`` from ``1^n``
(uniformity) and the linear-space input/output machines simulated inside
for-MATLANG (Proposition D.1).  This subpackage provides the machine model
those constructions assume — read-only input tapes, one work tape, one
write-only output tape — together with a rule-based simulator and a handful
of concrete machines used by the circuit-family experiments.
"""

from repro.turing.machine import RunResult, TransitionRule, TuringMachine
from repro.turing.programs import (
    parity_machine,
    sum_circuit_description_machine,
    unary_copy_machine,
    unary_double_machine,
)

__all__ = [
    "RunResult",
    "TransitionRule",
    "TuringMachine",
    "parity_machine",
    "sum_circuit_description_machine",
    "unary_copy_machine",
    "unary_double_machine",
]
