"""A rule-based simulator for deterministic multi-tape Turing machines.

The machine model follows Appendix D.1:

* ``input_tapes`` read-only tapes, each holding ``> w <`` for an input word
  ``w`` over ``{0, 1}``;
* one read/write work tape initialised to ``>``;
* one write-only output tape initialised to ``>`` whose head never moves left.

Transitions are given as an ordered list of :class:`TransitionRule` objects;
``None`` in a rule's ``reads`` component acts as a wildcard, and the first
matching rule fires.  This keeps hand-written machines small while remaining
fully deterministic (rule order resolves overlaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

#: Tape symbols: begin marker, end marker (inputs only) and blank.
BEGIN = ">"
END = "<"
BLANK = "_"

#: Head movements.
LEFT = "L"
RIGHT = "R"
STAY = "S"

_MOVES = {LEFT: -1, RIGHT: 1, STAY: 0}


class TuringMachineError(ReproError):
    """The machine is malformed or its simulation failed."""


@dataclass(frozen=True)
class TransitionRule:
    """One transition rule.

    ``reads`` lists the symbols expected under the heads of the input tapes,
    then the work tape, then the output tape; ``None`` matches any symbol.
    ``write_work`` / ``write_output`` of ``None`` leave the cell unchanged
    (for the output tape "unchanged" is the faithful way of writing nothing).
    ``moves`` lists one of ``"L"``, ``"R"``, ``"S"`` per tape, in the same
    order as ``reads``.
    """

    state: str
    reads: Tuple[Optional[str], ...]
    next_state: str
    write_work: Optional[str] = None
    write_output: Optional[str] = None
    moves: Tuple[str, ...] = ()

    def matches(self, state: str, symbols: Sequence[str]) -> bool:
        if state != self.state or len(symbols) != len(self.reads):
            return False
        return all(expected is None or expected == actual for expected, actual in zip(self.reads, symbols))


@dataclass
class RunResult:
    """Outcome of a Turing machine run."""

    accepted: bool
    steps: int
    output: str
    work_tape: str
    final_state: str


class _Tape:
    """A one-way-infinite tape with a begin marker at position 0."""

    def __init__(self, content: str) -> None:
        self.cells: List[str] = list(content)
        self.head = 0

    def read(self) -> str:
        if self.head < len(self.cells):
            return self.cells[self.head]
        return BLANK

    def write(self, symbol: str) -> None:
        while self.head >= len(self.cells):
            self.cells.append(BLANK)
        self.cells[self.head] = symbol

    def move(self, direction: str) -> None:
        delta = _MOVES[direction]
        if self.head + delta < 0:
            raise TuringMachineError("head attempted to move left of the begin marker")
        self.head += delta

    def contents(self) -> str:
        return "".join(self.cells).rstrip(BLANK)


class TuringMachine:
    """A deterministic machine with input tapes, a work tape and an output tape."""

    def __init__(
        self,
        name: str,
        rules: Sequence[TransitionRule],
        initial_state: str = "q0",
        accept_state: str = "qa",
        input_tapes: int = 1,
    ) -> None:
        if input_tapes < 1:
            raise TuringMachineError("a machine needs at least one input tape")
        self.name = name
        self.rules = list(rules)
        self.initial_state = initial_state
        self.accept_state = accept_state
        self.input_tapes = input_tapes
        expected = input_tapes + 2
        for rule in self.rules:
            if len(rule.reads) != expected or len(rule.moves) != expected:
                raise TuringMachineError(
                    f"rule for state {rule.state!r} must describe {expected} tapes "
                    f"({input_tapes} inputs + work + output)"
                )

    # ------------------------------------------------------------------
    def _find_rule(self, state: str, symbols: Sequence[str]) -> Optional[TransitionRule]:
        for rule in self.rules:
            if rule.matches(state, symbols):
                return rule
        return None

    def run(self, inputs: Sequence[str], max_steps: int = 100_000) -> RunResult:
        """Simulate the machine on the given input words.

        The words must be over ``{0, 1}``; they are wrapped with the begin and
        end markers automatically.  The run stops when the accept state is
        reached, when no rule applies (rejection), or after ``max_steps``.
        """
        if len(inputs) != self.input_tapes:
            raise TuringMachineError(
                f"machine {self.name!r} expects {self.input_tapes} input words, got {len(inputs)}"
            )
        for word in inputs:
            if any(symbol not in "01" for symbol in word):
                raise TuringMachineError(f"input word {word!r} is not over the alphabet {{0, 1}}")

        tapes = [_Tape(BEGIN + word + END) for word in inputs]
        work = _Tape(BEGIN)
        output = _Tape(BEGIN)
        state = self.initial_state
        steps = 0

        while state != self.accept_state and steps < max_steps:
            symbols = [tape.read() for tape in tapes] + [work.read(), output.read()]
            rule = self._find_rule(state, symbols)
            if rule is None:
                break
            if rule.write_work is not None:
                work.write(rule.write_work)
            if rule.write_output is not None:
                output.write(rule.write_output)
            for tape, move in zip(tapes, rule.moves[: self.input_tapes]):
                tape.move(move)
            work.move(rule.moves[self.input_tapes])
            output_move = rule.moves[self.input_tapes + 1]
            if output_move == LEFT:
                raise TuringMachineError("the output tape is write-only and cannot move left")
            output.move(output_move)
            state = rule.next_state
            steps += 1

        if steps >= max_steps and state != self.accept_state:
            raise TuringMachineError(
                f"machine {self.name!r} did not halt within {max_steps} steps"
            )

        return RunResult(
            accepted=state == self.accept_state,
            steps=steps,
            output=output.contents().lstrip(BEGIN),
            work_tape=work.contents().lstrip(BEGIN),
            final_state=state,
        )
