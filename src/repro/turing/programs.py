"""Concrete Turing machines used by the experiments.

The machines are deliberately small: they demonstrate the uniformity device
of Section 5 (a machine that on input ``1^n`` produces a description of the
``n``-th circuit of a family) and give the simulator meaningful unit tests.
"""

from __future__ import annotations

from repro.turing.machine import BEGIN, END, RIGHT, STAY, TransitionRule, TuringMachine


def unary_copy_machine() -> TuringMachine:
    """Copy the unary input word ``1^n`` to the output tape.

    The machine scans the input once, writing one ``1`` on the output tape for
    every ``1`` it reads, and accepts at the end marker.
    """
    rules = [
        # Skip the begin marker on the input tape.
        TransitionRule("q0", (BEGIN, None, None), "scan", moves=(RIGHT, STAY, STAY)),
        # Copy a 1 and advance both the input head and the output head.
        TransitionRule(
            "scan", ("1", None, None), "scan", write_output="1", moves=(RIGHT, STAY, RIGHT)
        ),
        # A 0 in the input is skipped (copying only the 1s keeps the output unary).
        TransitionRule("scan", ("0", None, None), "scan", moves=(RIGHT, STAY, STAY)),
        # End of the input: accept.
        TransitionRule("scan", (END, None, None), "qa", moves=(STAY, STAY, STAY)),
    ]
    return TuringMachine("unary_copy", rules)


def unary_double_machine() -> TuringMachine:
    """Write ``1^{2n}`` on the output tape for input ``1^n``."""
    rules = [
        TransitionRule("q0", (BEGIN, None, None), "scan", moves=(RIGHT, STAY, STAY)),
        # For every input 1: emit two 1s (via an intermediate state).
        TransitionRule(
            "scan", ("1", None, None), "second", write_output="1", moves=(STAY, STAY, RIGHT)
        ),
        TransitionRule(
            "second", ("1", None, None), "scan", write_output="1", moves=(RIGHT, STAY, RIGHT)
        ),
        TransitionRule("scan", ("0", None, None), "scan", moves=(RIGHT, STAY, STAY)),
        TransitionRule("scan", (END, None, None), "qa", moves=(STAY, STAY, STAY)),
    ]
    return TuringMachine("unary_double", rules)


def parity_machine() -> TuringMachine:
    """Write ``1`` if the input word contains an odd number of ``1`` symbols, else ``0``.

    Uses the work tape head position implicitly through two states (even /
    odd), which is the textbook constant-space parity machine.
    """
    rules = [
        TransitionRule("q0", (BEGIN, None, None), "even", moves=(RIGHT, STAY, STAY)),
        TransitionRule("even", ("1", None, None), "odd", moves=(RIGHT, STAY, STAY)),
        TransitionRule("even", ("0", None, None), "even", moves=(RIGHT, STAY, STAY)),
        TransitionRule("odd", ("1", None, None), "even", moves=(RIGHT, STAY, STAY)),
        TransitionRule("odd", ("0", None, None), "odd", moves=(RIGHT, STAY, STAY)),
        TransitionRule(
            "even", (END, None, None), "qa", write_output="0", moves=(STAY, STAY, RIGHT)
        ),
        TransitionRule(
            "odd", (END, None, None), "qa", write_output="1", moves=(STAY, STAY, RIGHT)
        ),
    ]
    return TuringMachine("parity", rules)


def sum_circuit_description_machine() -> TuringMachine:
    """The uniformity machine for the ``x_1 + ... + x_n`` circuit family.

    On input ``1^n`` it writes the description ``1^n`` on its output tape,
    which :func:`repro.circuits.families.family_from_machine` decodes as "a
    single sum gate over n inputs".  This is the machine-generated notion of
    uniformity used by experiment E8.
    """
    machine = unary_copy_machine()
    machine.name = "sum_circuit_description"
    return machine
