"""Weighted logics over commutative semirings (Section 6.2).

Weighted logics (Droste & Gastin) extend first-order logic from the boolean
semiring to an arbitrary semiring ``K``: formulas evaluate to semiring values,
disjunction/conjunction become ``+``/``*`` and the quantifiers become sums and
products over the structure's domain.  Proposition 6.7 shows the first-order
fragment used here has exactly the expressive power of FO-MATLANG over square
schemas; both translation directions are implemented.
"""

from repro.wlogic.formulas import Atom, Equals, Formula, Plus, ProdQ, SumQ, Times
from repro.wlogic.matlang_to_wl import translate_fo_matlang
from repro.wlogic.semantics import evaluate_formula
from repro.wlogic.structures import (
    WeightedStructure,
    structure_from_instance,
    structure_to_instance,
)
from repro.wlogic.wl_to_matlang import evaluate_formula_via_matlang, translate_formula

__all__ = [
    "Atom",
    "Equals",
    "Formula",
    "Plus",
    "ProdQ",
    "SumQ",
    "Times",
    "WeightedStructure",
    "evaluate_formula",
    "evaluate_formula_via_matlang",
    "structure_from_instance",
    "structure_to_instance",
    "translate_fo_matlang",
    "translate_formula",
]
