"""Syntax of (first-order) weighted logic formulas (Section 6.2).

The grammar is::

    phi := x = y | R(x_1, ..., x_k) | phi (+) phi | phi (*) phi
         | Sum x. phi | Prod x. phi

Formulas are immutable dataclasses; substitution renames free variable
occurrences and is used by the FO-MATLANG -> WL translation (transposition
swaps the row and column variables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Tuple


@dataclass(frozen=True)
class Formula:
    """Base class of weighted-logic formulas."""

    def children(self) -> Tuple["Formula", ...]:
        return ()

    def walk(self) -> Iterator["Formula"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def free_variables(self) -> Tuple[str, ...]:
        """Free first-order variables, sorted."""
        return tuple(sorted(self._free(frozenset())))

    def _free(self, bound: frozenset) -> set:
        names = set()
        for child in self.children():
            names |= child._free(bound)
        return names

    def substitute(self, mapping: Mapping[str, str]) -> "Formula":
        """Simultaneously rename free variable occurrences."""
        return self._substitute(dict(mapping), frozenset())

    def _substitute(self, mapping: Mapping[str, str], bound: frozenset) -> "Formula":
        raise NotImplementedError  # pragma: no cover

    def __add__(self, other: "Formula") -> "Formula":
        return Plus(self, other)

    def __mul__(self, other: "Formula") -> "Formula":
        return Times(self, other)


@dataclass(frozen=True)
class Equals(Formula):
    """``x = y``: weight 1 when the assignment makes them equal, else 0."""

    left: str
    right: str

    def _free(self, bound: frozenset) -> set:
        return {name for name in (self.left, self.right) if name not in bound}

    def _substitute(self, mapping, bound):
        left = mapping.get(self.left, self.left) if self.left not in bound else self.left
        right = mapping.get(self.right, self.right) if self.right not in bound else self.right
        return Equals(left, right)


@dataclass(frozen=True)
class Atom(Formula):
    """``R(x_1, ..., x_k)``: the weight of the tuple under the structure."""

    relation: str
    variables: Tuple[str, ...]

    def __init__(self, relation: str, variables=()) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "variables", tuple(variables))

    def _free(self, bound: frozenset) -> set:
        return {name for name in self.variables if name not in bound}

    def _substitute(self, mapping, bound):
        renamed = tuple(
            mapping.get(name, name) if name not in bound else name for name in self.variables
        )
        return Atom(self.relation, renamed)


@dataclass(frozen=True)
class Plus(Formula):
    """``phi (+) psi``: semiring addition of the two weights."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _substitute(self, mapping, bound):
        return Plus(self.left._substitute(mapping, bound), self.right._substitute(mapping, bound))


@dataclass(frozen=True)
class Times(Formula):
    """``phi (*) psi``: semiring multiplication of the two weights."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _substitute(self, mapping, bound):
        return Times(self.left._substitute(mapping, bound), self.right._substitute(mapping, bound))


@dataclass(frozen=True)
class _Quantifier(Formula):
    variable: str
    body: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def _free(self, bound: frozenset) -> set:
        return self.body._free(bound | {self.variable})

    def _substitute(self, mapping, bound):
        return type(self)(self.variable, self.body._substitute(mapping, bound | {self.variable}))


@dataclass(frozen=True)
class SumQ(_Quantifier):
    """``Sum x. phi``: sum of the body's weight over all domain elements."""


@dataclass(frozen=True)
class ProdQ(_Quantifier):
    """``Prod x. phi``: product of the body's weight over all domain elements."""
