"""Translating FO-MATLANG expressions to weighted-logic formulas (Proposition 6.7).

The translation follows the first bullet of the proposition: an FO-MATLANG
expression over a square schema, of type ``(1, 1)`` and with no free iterator
variables, becomes a weighted-logic sentence over the vocabulary ``WL(S)``
such that evaluation commutes with the encoding of instances as weighted
structures.  Sub-expressions of matrix or vector type are translated to
formulas with the designated free variables ``row`` / ``col`` standing for the
row and column index, plus one variable ``it_v`` per free iterator ``v``.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import FragmentError
from repro.matlang.ast import (
    Add,
    Apply,
    Diag,
    Expression,
    HadamardLoop,
    Literal,
    MatMul,
    OneVector,
    ScalarMul,
    SumLoop,
    Transpose,
    TypeHint,
    Var,
)
from repro.matlang.fragments import Fragment, minimal_fragment
from repro.matlang.schema import SCALAR_SYMBOL, Schema
from repro.matlang.typecheck import TypedExpression, annotate
from repro.wlogic.formulas import Atom, Equals, Formula, Plus, ProdQ, SumQ, Times
from repro.wlogic.structures import variable_relation

#: Designated variable names for the row and column index of a sub-expression.
ROW_VARIABLE = "row"
COL_VARIABLE = "col"


def iterator_variable(name: str) -> str:
    """The WL variable standing for the canonical-vector iterator ``name``."""
    return f"it_{name}"


class _Translator:
    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._fresh = 0

    def fresh_variable(self) -> str:
        self._fresh += 1
        return f"y_{self._fresh}"

    # ------------------------------------------------------------------
    def translate(self, typed: TypedExpression, iterators: Dict[str, str]) -> Formula:
        expression = typed.expression
        row_symbol, col_symbol = typed.type

        if isinstance(expression, TypeHint):
            return self.translate(typed.children[0], iterators)

        if isinstance(expression, Var):
            return self._translate_var(expression, typed, iterators)

        if isinstance(expression, Literal):
            raise FragmentError(
                "scalar literals have no weighted-logic counterpart; Proposition 6.7 "
                "covers literal-free FO-MATLANG expressions"
            )

        if isinstance(expression, OneVector):
            return Equals(ROW_VARIABLE, ROW_VARIABLE)

        if isinstance(expression, Diag):
            operand = self.translate(typed.children[0], iterators)
            return Times(operand, Equals(ROW_VARIABLE, COL_VARIABLE))

        if isinstance(expression, Transpose):
            operand = self.translate(typed.children[0], iterators)
            return operand.substitute({ROW_VARIABLE: COL_VARIABLE, COL_VARIABLE: ROW_VARIABLE})

        if isinstance(expression, Add):
            left = self.translate(typed.children[0], iterators)
            right = self.translate(typed.children[1], iterators)
            return Plus(left, right)

        if isinstance(expression, (ScalarMul, Apply)):
            if isinstance(expression, Apply) and expression.function != "mul":
                raise FragmentError(
                    f"pointwise function {expression.function!r} has no weighted-logic "
                    "counterpart; only the product function of Lemma A.1 is supported"
                )
            formula = self.translate(typed.children[0], iterators)
            for child in typed.children[1:]:
                formula = Times(formula, self.translate(child, iterators))
            return formula

        if isinstance(expression, MatMul):
            return self._translate_matmul(typed, iterators)

        if isinstance(expression, SumLoop):
            inner = dict(iterators)
            inner[expression.iterator] = typed.iterator_symbol or ""
            body = self.translate(typed.children[0], inner)
            return SumQ(iterator_variable(expression.iterator), body)

        if isinstance(expression, HadamardLoop):
            inner = dict(iterators)
            inner[expression.iterator] = typed.iterator_symbol or ""
            body = self.translate(typed.children[0], inner)
            return ProdQ(iterator_variable(expression.iterator), body)

        raise FragmentError(
            f"node {type(expression).__name__} is outside FO-MATLANG and cannot be "
            "translated to weighted logic (Proposition 6.7)"
        )

    # ------------------------------------------------------------------
    def _translate_var(
        self, expression: Var, typed: TypedExpression, iterators: Dict[str, str]
    ) -> Formula:
        row_symbol, col_symbol = typed.type
        if expression.name in iterators:
            if row_symbol != SCALAR_SYMBOL:
                return Equals(ROW_VARIABLE, iterator_variable(expression.name))
            if col_symbol != SCALAR_SYMBOL:
                return Equals(COL_VARIABLE, iterator_variable(expression.name))
            raise FragmentError(
                f"iterator variable {expression.name!r} has scalar type; cannot translate"
            )
        relation = variable_relation(expression.name)
        if row_symbol != SCALAR_SYMBOL and col_symbol != SCALAR_SYMBOL:
            return Atom(relation, (ROW_VARIABLE, COL_VARIABLE))
        if row_symbol != SCALAR_SYMBOL:
            return Atom(relation, (ROW_VARIABLE,))
        if col_symbol != SCALAR_SYMBOL:
            return Atom(relation, (COL_VARIABLE,))
        return Atom(relation, ())

    def _translate_matmul(
        self, typed: TypedExpression, iterators: Dict[str, str]
    ) -> Formula:
        left_typed, right_typed = typed.children
        inner_symbol = left_typed.type[1]
        left = self.translate(left_typed, iterators)
        right = self.translate(right_typed, iterators)
        if inner_symbol == SCALAR_SYMBOL:
            return Times(left, right)
        join_variable = self.fresh_variable()
        left_joined = left.substitute({COL_VARIABLE: join_variable})
        right_joined = right.substitute({ROW_VARIABLE: join_variable})
        return SumQ(join_variable, Times(left_joined, right_joined))


def translate_fo_matlang(expression: Expression, schema: Schema) -> Formula:
    """Proposition 6.7 (first bullet): FO-MATLANG to weighted logic.

    The expression must be of scalar type ``(1, 1)`` over a square schema;
    the result is a weighted-logic sentence over ``WL(S)``.
    """
    fragment = minimal_fragment(expression)
    if not Fragment.FO_MATLANG.includes(fragment):
        raise FragmentError(
            f"expression lives in {fragment.display_name}; Proposition 6.7 only covers "
            "FO-MATLANG"
        )
    if not schema.is_square_schema():
        raise FragmentError("Proposition 6.7 assumes a square schema")
    typed = annotate(expression, schema)
    if typed.type != (SCALAR_SYMBOL, SCALAR_SYMBOL):
        raise FragmentError(
            f"only (1, 1)-typed expressions translate to sentences; got type {typed.type}"
        )
    translator = _Translator(schema)
    formula = translator.translate(typed, {})
    remaining = [name for name in formula.free_variables() if name not in (ROW_VARIABLE, COL_VARIABLE)]
    if remaining:
        raise FragmentError(f"translation left unexpected free variables {remaining}")
    return formula
