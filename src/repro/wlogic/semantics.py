"""Semantics of weighted-logic formulas over weighted structures (Section 6.2)."""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.exceptions import EvaluationError
from repro.wlogic.formulas import Atom, Equals, Formula, Plus, ProdQ, SumQ, Times
from repro.wlogic.structures import WeightedStructure


def evaluate_formula(
    formula: Formula,
    structure: WeightedStructure,
    assignment: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate ``formula`` over ``structure`` under ``assignment``.

    Every free variable of the formula must be assigned a domain element;
    sentences need no assignment.
    """
    env: Dict[str, Any] = dict(assignment or {})
    missing = [name for name in formula.free_variables() if name not in env]
    if missing:
        raise EvaluationError(f"no assignment for free variables {missing}")
    return _evaluate(formula, structure, env)


def _evaluate(formula: Formula, structure: WeightedStructure, env: Dict[str, Any]) -> Any:
    semiring = structure.semiring

    if isinstance(formula, Equals):
        return semiring.one if env[formula.left] == env[formula.right] else semiring.zero

    if isinstance(formula, Atom):
        values = [env[name] for name in formula.variables]
        return structure.weight(formula.relation, values)

    if isinstance(formula, Plus):
        return semiring.plus(
            _evaluate(formula.left, structure, env), _evaluate(formula.right, structure, env)
        )

    if isinstance(formula, Times):
        return semiring.times(
            _evaluate(formula.left, structure, env), _evaluate(formula.right, structure, env)
        )

    if isinstance(formula, (SumQ, ProdQ)):
        saved = env.get(formula.variable)
        had_binding = formula.variable in env
        total = semiring.zero if isinstance(formula, SumQ) else semiring.one
        try:
            for element in structure.domain:
                env[formula.variable] = element
                value = _evaluate(formula.body, structure, env)
                if isinstance(formula, SumQ):
                    total = semiring.plus(total, value)
                else:
                    total = semiring.times(total, value)
        finally:
            if had_binding:
                env[formula.variable] = saved
            else:
                env.pop(formula.variable, None)
        return total

    raise EvaluationError(f"unknown formula node {type(formula).__name__}")
