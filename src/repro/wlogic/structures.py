"""K-weighted structures: the models of weighted logics.

A weighted structure over a relational vocabulary assigns to every relation
symbol ``R`` of arity ``k`` a weight function ``R^A : A^k -> K`` on the finite
domain ``A``.  The encodings between weighted structures and MATLANG
instances (square matrices / vectors / scalars over the same domain) follow
Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import SchemaError
from repro.matlang.instance import Instance
from repro.matlang.schema import SCALAR_SYMBOL, Schema
from repro.semiring import REAL, Semiring, from_entries


def relation_variable(symbol: str) -> str:
    """The matrix variable encoding relation symbol ``symbol`` (Mat(Gamma))."""
    return f"V_{symbol}"


def variable_relation(variable: str) -> str:
    """The relation symbol encoding matrix variable ``variable`` (WL(S))."""
    return f"R_{variable}"


@dataclass
class WeightedStructure:
    """A finite K-weighted structure.

    ``weights`` maps each relation symbol to a dictionary from value tuples
    (of the symbol's arity) to semiring values; missing tuples have weight
    zero.  ``arities`` fixes each symbol's arity, so empty relations are
    representable.
    """

    domain: Tuple[Any, ...]
    arities: Dict[str, int]
    weights: Dict[str, Dict[Tuple[Any, ...], Any]] = field(default_factory=dict)
    semiring: Semiring = field(default_factory=lambda: REAL)

    def __post_init__(self) -> None:
        self.domain = tuple(self.domain)
        if not self.domain:
            raise SchemaError("a weighted structure needs a non-empty domain")
        cleaned: Dict[str, Dict[Tuple[Any, ...], Any]] = {}
        for symbol, arity in self.arities.items():
            table = {}
            for values, weight in self.weights.get(symbol, {}).items():
                values = tuple(values)
                if len(values) != arity:
                    raise SchemaError(
                        f"tuple {values} has length {len(values)}, but {symbol!r} has arity {arity}"
                    )
                for value in values:
                    if value not in self.domain:
                        raise SchemaError(f"value {value!r} is not in the structure's domain")
                table[values] = self.semiring.coerce(weight)
            cleaned[symbol] = table
        self.weights = cleaned

    # ------------------------------------------------------------------
    def arity(self, symbol: str) -> int:
        try:
            return self.arities[symbol]
        except KeyError:
            raise SchemaError(f"unknown relation symbol {symbol!r}") from None

    def weight(self, symbol: str, values: Sequence[Any]) -> Any:
        """The weight ``R^A(values)`` (the semiring zero when unspecified)."""
        arity = self.arity(symbol)
        values = tuple(values)
        if len(values) != arity:
            raise SchemaError(
                f"relation {symbol!r} has arity {arity}, got a tuple of length {len(values)}"
            )
        return self.weights.get(symbol, {}).get(values, self.semiring.zero)

    def set_weight(self, symbol: str, values: Sequence[Any], weight: Any) -> None:
        """Assign a weight to one tuple."""
        arity = self.arity(symbol)
        values = tuple(values)
        if len(values) != arity:
            raise SchemaError(
                f"relation {symbol!r} has arity {arity}, got a tuple of length {len(values)}"
            )
        self.weights.setdefault(symbol, {})[values] = self.semiring.coerce(weight)

    def symbols(self) -> Tuple[str, ...]:
        return tuple(sorted(self.arities))


# ----------------------------------------------------------------------
# Encodings between structures and MATLANG instances (Section 6.2)
# ----------------------------------------------------------------------
def structure_to_instance(
    structure: WeightedStructure, symbol: str = "alpha"
) -> Tuple[Instance, Tuple[Any, ...]]:
    """``Mat(A)``: encode a weighted structure as a MATLANG instance.

    Binary relations become square matrices indexed by the (ordered) domain,
    unary relations become column vectors and nullary relations scalars.
    Returns the instance together with the domain ordering used.
    """
    if any(arity > 2 for arity in structure.arities.values()):
        raise SchemaError("Mat(A) is only defined for vocabularies of arity at most two")
    domain = structure.domain
    size = len(domain)
    index = {value: position for position, value in enumerate(domain)}
    semiring = structure.semiring

    sizes: Dict[str, Tuple[str, str]] = {}
    matrices: Dict[str, np.ndarray] = {}
    for relation in structure.symbols():
        arity = structure.arity(relation)
        variable = relation_variable(relation)
        weights = structure.weights.get(relation, {})
        # from_entries routes the weights through the kernel coercion
        # boundary, so out-of-storage values fail with SemiringError instead
        # of a raw numpy assignment error.
        if arity == 2:
            sizes[variable] = (symbol, symbol)
            matrix = from_entries(
                semiring,
                size,
                size,
                {
                    (index[left], index[right]): weight
                    for (left, right), weight in weights.items()
                },
            )
        elif arity == 1:
            sizes[variable] = (symbol, SCALAR_SYMBOL)
            matrix = from_entries(
                semiring,
                size,
                1,
                {(index[value], 0): weight for (value,), weight in weights.items()},
            )
        else:
            sizes[variable] = (SCALAR_SYMBOL, SCALAR_SYMBOL)
            matrix = from_entries(
                semiring, 1, 1, {(0, 0): weight for _, weight in weights.items()}
            )
        matrices[variable] = matrix

    schema = Schema(sizes)
    instance = Instance(schema, {symbol: size}, matrices, semiring)
    return instance, domain


def structure_from_instance(instance: Instance) -> WeightedStructure:
    """``WL(I)``: encode a square-schema MATLANG instance as a weighted structure.

    The domain is ``{1, ..., n}``; a square matrix variable ``V`` becomes a
    binary relation ``R_V``, vectors become unary relations (column and row
    vectors alike) and scalars nullary relations.
    """
    if not instance.schema.is_square_schema():
        raise SchemaError("WL(I) is only defined for square schemas")
    non_scalar = [s for s in instance.schema.symbols() if s != SCALAR_SYMBOL]
    size = instance.dimension(non_scalar[0]) if non_scalar else 1
    domain = tuple(range(1, size + 1))
    semiring = instance.semiring

    arities: Dict[str, int] = {}
    weights: Dict[str, Dict[Tuple[Any, ...], Any]] = {}
    for name in instance.schema.variables():
        if name not in instance.matrices:
            continue
        matrix = instance.matrix(name)
        row_symbol, col_symbol = instance.schema.size(name)
        relation = variable_relation(name)
        if row_symbol != SCALAR_SYMBOL and col_symbol != SCALAR_SYMBOL:
            arities[relation] = 2
            weights[relation] = {
                (i + 1, j + 1): matrix[i, j]
                for i in range(matrix.shape[0])
                for j in range(matrix.shape[1])
            }
        elif row_symbol != SCALAR_SYMBOL or col_symbol != SCALAR_SYMBOL:
            arities[relation] = 1
            flat = matrix.reshape(-1)
            weights[relation] = {(i + 1,): flat[i] for i in range(flat.shape[0])}
        else:
            arities[relation] = 0
            weights[relation] = {(): matrix[0, 0]}
    return WeightedStructure(domain=domain, arities=arities, weights=weights, semiring=semiring)
