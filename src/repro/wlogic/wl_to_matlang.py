"""Translating weighted-logic formulas to FO-MATLANG (Proposition 6.7, second bullet).

Every first-order variable ``x`` becomes a canonical-vector variable ``v_x``;
atoms become positional accesses ``v_x^T . V_R . v_y``, the weighted
connectives become ``+`` and (scalar) product, and the weighted quantifiers
become the Sigma and Hadamard-Pi quantifiers of FO-MATLANG.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.exceptions import FragmentError
from repro.matlang.ast import Expression, Var
from repro.matlang.builder import had, ssum, var
from repro.matlang.evaluator import evaluate
from repro.wlogic.formulas import Atom, Equals, Formula, Plus, ProdQ, SumQ, Times
from repro.wlogic.structures import (
    WeightedStructure,
    relation_variable,
    structure_to_instance,
)


def logic_variable(name: str) -> str:
    """The MATLANG vector variable standing for the FO variable ``name``."""
    return f"_fo_{name}"


def translate_formula(formula: Formula, arities: Dict[str, int]) -> Expression:
    """Proposition 6.7 (second bullet): weighted logic to FO-MATLANG.

    ``arities`` gives the arity of every relation symbol (at most two).  The
    formula must be a sentence; the returned expression has type ``(1, 1)``.
    """
    if formula.free_variables():
        raise FragmentError(
            f"only sentences are translated; free variables: {formula.free_variables()}"
        )
    if any(arity > 2 for arity in arities.values()):
        raise FragmentError("Proposition 6.7 assumes relation symbols of arity at most two")
    return _translate(formula, arities)


def _translate(formula: Formula, arities: Dict[str, int]) -> Expression:
    if isinstance(formula, Equals):
        return var(logic_variable(formula.left)).T @ var(logic_variable(formula.right))

    if isinstance(formula, Atom):
        arity = arities.get(formula.relation)
        if arity is None:
            raise FragmentError(f"relation symbol {formula.relation!r} has no declared arity")
        matrix = Var(relation_variable(formula.relation))
        if arity == 2:
            left, right = formula.variables
            return var(logic_variable(left)).T @ matrix @ var(logic_variable(right))
        if arity == 1:
            (only,) = formula.variables
            return matrix.T @ var(logic_variable(only))
        return matrix

    if isinstance(formula, Plus):
        return _translate(formula.left, arities) + _translate(formula.right, arities)

    if isinstance(formula, Times):
        return _translate(formula.left, arities) @ _translate(formula.right, arities)

    if isinstance(formula, SumQ):
        return ssum(logic_variable(formula.variable), _translate(formula.body, arities))

    if isinstance(formula, ProdQ):
        return had(logic_variable(formula.variable), _translate(formula.body, arities))

    raise FragmentError(f"unknown formula node {type(formula).__name__}")


def evaluate_formula_via_matlang(formula: Formula, structure: WeightedStructure) -> Any:
    """Evaluate a weighted-logic sentence by translating it to FO-MATLANG.

    The structure is encoded as a MATLANG instance (``Mat(A)``), the translated
    expression is evaluated, and the scalar entry is returned — ready to be
    compared against :func:`repro.wlogic.semantics.evaluate_formula`
    (experiment E13).
    """
    expression = translate_formula(formula, dict(structure.arities))
    instance, _ = structure_to_instance(structure)
    result = evaluate(expression, instance)
    return result[0, 0]
