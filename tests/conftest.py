"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matlang.instance import Instance
from repro.semiring import BOOLEAN, MIN_PLUS, NATURAL, REAL


@pytest.fixture(scope="session", autouse=True)
def _pinned_cost_profile():
    """Pin the built-in cost profile for the whole session.

    A calibrated per-install profile (``python -m repro.calibrate``) would
    otherwise auto-load on first use and change physical-planning decisions
    under the suite, making results machine-dependent.
    """
    from repro.profile import DEFAULT_PROFILE, set_active_profile

    set_active_profile(DEFAULT_PROFILE)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by the tests."""
    return np.random.default_rng(20210627)


@pytest.fixture
def square_matrix() -> np.ndarray:
    """A fixed, well-conditioned 4x4 matrix used across evaluator tests."""
    return np.array(
        [
            [4.0, 1.0, 2.0, 0.0],
            [1.0, 3.0, 0.0, 1.0],
            [2.0, 0.0, 5.0, 1.0],
            [0.0, 1.0, 1.0, 6.0],
        ]
    )


@pytest.fixture
def square_instance(square_matrix: np.ndarray) -> Instance:
    """An instance assigning the fixed matrix to variable ``A``."""
    return Instance.from_matrices({"A": square_matrix})


@pytest.fixture
def path_instance() -> Instance:
    """The directed path 1 -> 2 -> 3 -> 4 as an adjacency matrix instance."""
    adjacency = np.zeros((4, 4))
    adjacency[0, 1] = adjacency[1, 2] = adjacency[2, 3] = 1.0
    return Instance.from_matrices({"A": adjacency})


@pytest.fixture(params=[REAL, NATURAL, BOOLEAN, MIN_PLUS], ids=lambda s: s.name)
def any_semiring(request):
    """Parametrised fixture running a test over several semirings."""
    return request.param
