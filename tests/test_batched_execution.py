"""Tests for batched plan execution and the new sparse tropical backend.

Covers five concerns:

* **batched kernels** — ``batch_matmul`` / ``batch_add`` / ``batch_hadamard``
  and the row-wise reductions agree slice-by-slice with the 2-D kernels for
  every registered semiring (the object-fold fallback included), and the
  int64 batched matmul falls back per slice — never wrapping — when the
  batch-wide bound fails;
* **the batched backend** — :class:`BatchedDenseBackend` implements the
  execution-backend protocol over ``(B, rows, cols)`` stacks, with
  batch-invariant constructors as broadcast views;
* **batched plans** — :func:`execute_plan_batch` produces bitwise-identical
  results to the per-instance executor across semirings and workloads
  (random sum-MATLANG expressions and stdlib constructions);
* **sharding** — :func:`evaluate_batch` / :meth:`CompiledWorkload.run_batch`
  bucket ragged sweeps (mixed sizes, schemas and semirings), respect chunk
  boundaries, preserve input order and handle empty batches;
* **sparse min-plus / max-plus** — :class:`SparseTropicalBackend` agrees
  entrywise with the dense kernels and is reachable through
  ``Evaluator(instance, backend="sparse")`` on the tropical semirings;
* **block-diagonal CSR batching** — the batched sparse backend family
  agrees slice-by-slice with the single sparse backend, and adaptive
  batched sweeps over sparse-selected instances are bitwise equal to
  per-instance execution (sparse and dense alike), including powers,
  closures, empty members, ragged groups and chunk boundaries.
"""

import numpy as np
import pytest

from repro.exceptions import EvaluationError, SemiringError
from repro.experiments.harness import CompiledWorkload
from repro.experiments.workloads import random_digraph, random_sum_matlang_expression
from repro.matlang.builder import apply, ssum, var
from repro.matlang.compiler import compile_expression
from repro.matlang.evaluator import Evaluator, evaluate_batch, run_plan_batch
from repro.matlang.functions import default_registry
from repro.matlang.instance import Instance
from repro.matlang.ir import execute_plan, execute_plan_batch
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.backends import (
    BatchedDenseBackend,
    DenseExecutionBackend,
    SparseTropicalBackend,
    backend_for,
)
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.stdlib import shortest_path_matrix, total_sum, trace

try:
    import scipy.sparse  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    HAVE_SCIPY = False

ALL_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]
TROPICAL = [MIN_PLUS, MAX_PLUS]


def _matrix_for(semiring, rows, cols, seed):
    rng = np.random.default_rng(seed)
    if semiring.name == "boolean":
        return rng.random((rows, cols)) < 0.4
    if semiring.name == "natural":
        return rng.integers(0, 5, (rows, cols))
    if semiring.name == "integer":
        return rng.integers(-4, 5, (rows, cols))
    if semiring.name in ("min_plus", "max_plus"):
        return np.round(rng.random((rows, cols)) * 9, 3)
    if semiring.name == "provenance":
        matrix = np.empty((rows, cols), dtype=object)
        for i in range(rows):
            for j in range(cols):
                matrix[i, j] = (
                    Polynomial.variable(f"x{seed}_{i}_{j}") if rng.random() < 0.5 else 0
                )
        return matrix
    return rng.standard_normal((rows, cols))


def _stack_for(semiring, batch, rows, cols, base_seed=0):
    kernels = semiring.kernels
    return np.stack(
        [
            kernels.ensure_storage(
                kernels.coerce_matrix(_matrix_for(semiring, rows, cols, base_seed + b))
            )
            for b in range(batch)
        ]
    )


def _instance_for(semiring, dimension, seed):
    return Instance.from_matrices(
        {"A": _matrix_for(semiring, dimension, dimension, seed)}, semiring=semiring
    )


def _entrywise_equal(left, right):
    if left.shape != right.shape:
        return False
    if left.dtype == object or right.dtype == object:
        return all(left[index] == right[index] for index in np.ndindex(left.shape))
    return bool(np.array_equal(left, right))


# ----------------------------------------------------------------------
# Batched kernels
# ----------------------------------------------------------------------
class TestBatchedKernels:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_batch_matmul_matches_per_slice(self, semiring):
        kernels = semiring.kernels
        left = _stack_for(semiring, 5, 4, 3, base_seed=0)
        right = _stack_for(semiring, 5, 3, 6, base_seed=50)
        batched = kernels.batch_matmul(left, right)
        for index in range(5):
            assert _entrywise_equal(batched[index], kernels.matmul(left[index], right[index]))

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_batch_elementwise_matches_per_slice(self, semiring):
        kernels = semiring.kernels
        left = _stack_for(semiring, 4, 3, 3, base_seed=0)
        right = _stack_for(semiring, 4, 3, 3, base_seed=40)
        added = kernels.batch_add(left, right)
        multiplied = kernels.batch_hadamard(left, right)
        for index in range(4):
            assert _entrywise_equal(added[index], kernels.add_matrices(left[index], right[index]))
            assert _entrywise_equal(
                multiplied[index], kernels.hadamard(left[index], right[index])
            )

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_batch_reductions_match_scalar_folds(self, semiring):
        kernels = semiring.kernels
        rows = _stack_for(semiring, 6, 5, 1, base_seed=7)[:, :, 0]
        sums = kernels.batch_sum(rows.copy())
        products = kernels.batch_product(rows.copy())
        assert sums.shape == (6, 1, 1) and products.shape == (6, 1, 1)
        for index in range(6):
            assert semiring.close_to(sums[index, 0, 0], kernels.sum(rows[index].copy()))
            assert semiring.close_to(
                products[index, 0, 0], kernels.product(rows[index].copy())
            )

    def test_batch_matmul_shape_errors(self):
        kernels = REAL.kernels
        with pytest.raises(SemiringError):
            kernels.batch_matmul(np.zeros((2, 3, 4)), np.zeros((2, 5, 6)))
        with pytest.raises(SemiringError):
            kernels.batch_matmul(np.zeros((2, 3, 4)), np.zeros((3, 4, 6)))
        with pytest.raises(SemiringError):
            kernels.batch_matmul(np.zeros((3, 4)), np.zeros((4, 6)))
        with pytest.raises(SemiringError):
            kernels.batch_add(np.zeros((2, 3, 4)), np.zeros((3, 3, 4)))

    def test_int64_batch_bound_falls_back_per_slice(self):
        kernels = INTEGER.kernels
        # The batch-wide bound mixes extrema across slices (max|L| from one
        # slice, max|R| from another), so it fails here even though every
        # individual slice is comfortably wrap-free — the per-slice 2-D
        # kernels must deliver the exact results.
        big = np.zeros((2, 2), dtype=np.int64)
        np.fill_diagonal(big, 2**40)
        small = np.full((2, 2), 3, dtype=np.int64)
        left = np.stack([big, small])
        right = np.stack([small, big])
        result = kernels.batch_matmul(left, right)
        assert result.dtype == np.int64
        assert np.array_equal(result[0], big @ small)
        assert np.array_equal(result[1], small @ big)

    def test_int64_batch_overflow_raises_instead_of_wrapping(self):
        kernels = INTEGER.kernels
        huge = np.full((2, 2, 2), 2**32, dtype=np.int64)
        with pytest.raises(SemiringError):
            kernels.batch_matmul(huge, huge)

    @pytest.mark.parametrize("semiring", TROPICAL, ids=lambda s: s.name)
    def test_tropical_batch_matmul_blocks(self, semiring, monkeypatch):
        kernels = semiring.kernels
        monkeypatch.setattr(type(kernels), "_BLOCK_ENTRIES", 64)
        left = _stack_for(semiring, 7, 4, 5, base_seed=1)
        right = _stack_for(semiring, 7, 5, 3, base_seed=80)
        batched = kernels.batch_matmul(left, right)
        for index in range(7):
            assert np.array_equal(batched[index], kernels.matmul(left[index], right[index]))


# ----------------------------------------------------------------------
# The batched dense backend
# ----------------------------------------------------------------------
class TestBatchedDenseBackend:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_protocol_operations_match_dense(self, semiring):
        batch = 4
        batched = BatchedDenseBackend(semiring, batch)
        dense = DenseExecutionBackend(semiring)
        stack = _stack_for(semiring, batch, 5, 5, base_seed=3)
        column = _stack_for(semiring, batch, 5, 1, base_seed=90)

        operations = {
            "transpose": (lambda b, value: b.transpose(value), stack),
            "row_sums": (lambda b, value: b.row_sums(value), stack),
            "col_sums": (lambda b, value: b.col_sums(value), stack),
            "trace": (lambda b, value: b.trace(value), stack),
            "diag_of_diagonal": (lambda b, value: b.diag_of_diagonal(value), stack),
            "diag_product": (lambda b, value: b.diag_product(value), stack),
            "nsum": (lambda b, value: b.nsum(value, 3), stack),
            "power": (lambda b, value: b.power(value, 3), stack),
            "hadamard_power": (lambda b, value: b.hadamard_power(value, 3), stack),
            "diag": (lambda b, value: b.diag(value), column),
        }
        for name, (operation, operand) in operations.items():
            expected = [
                dense.to_dense(
                    operation(dense, operand[index] if name != "diag" else operand[index])
                )
                for index in range(batch)
            ]
            actual = batched.to_dense(operation(batched, operand))
            for index in range(batch):
                assert _entrywise_equal(actual[index], expected[index]), (
                    semiring.name,
                    name,
                )

    def test_constructors_are_batch_views(self):
        backend = BatchedDenseBackend(REAL, 8)
        zeros = backend.zeros(3, 4)
        assert zeros.shape == (8, 3, 4)
        assert zeros.strides[0] == 0, "batch-invariant values must not copy"
        assert backend.identity(5).shape == (8, 5, 5)
        assert backend.basis_column(5, 2).shape == (8, 5, 1)

    def test_from_dense_shapes(self):
        backend = BatchedDenseBackend(REAL, 3)
        assert backend.from_dense(np.zeros((2, 2))).shape == (3, 2, 2)
        assert backend.from_dense(np.zeros((3, 2, 2))).shape == (3, 2, 2)
        with pytest.raises(SemiringError):
            backend.from_dense(np.zeros((4, 2, 2)))
        with pytest.raises(SemiringError):
            BatchedDenseBackend(REAL, 0)

    def test_stack_rejects_wrong_count_and_shapes(self):
        backend = BatchedDenseBackend(REAL, 2)
        with pytest.raises(SemiringError):
            backend.stack_instance_matrices([np.zeros((2, 2))])
        with pytest.raises(ValueError):
            backend.stack_instance_matrices([np.zeros((2, 2)), np.zeros((3, 3))])


# ----------------------------------------------------------------------
# Batched plans: bitwise equivalence with the per-instance executor
# ----------------------------------------------------------------------
class TestBatchedPlanEquivalence:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_sum_matlang_sweeps(self, semiring, seed):
        expression = random_sum_matlang_expression(seed=seed, depth=3)
        instances = [
            Instance.from_matrices(
                {
                    "A": _matrix_for(semiring, 3, 3, seed * 10 + offset),
                    "B": _matrix_for(semiring, 3, 3, seed * 10 + offset + 100),
                },
                semiring=semiring,
            )
            for offset in range(4)
        ]
        self._assert_batch_matches_sequential(expression, instances)

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_stdlib_sweeps(self, semiring):
        instances = [_instance_for(semiring, 5, seed) for seed in range(5)]
        for expression in (trace("A"), total_sum("A")):
            self._assert_batch_matches_sequential(expression, instances)

    @pytest.mark.parametrize("semiring", [REAL, BOOLEAN, MIN_PLUS], ids=lambda s: s.name)
    def test_closure_sweeps(self, semiring):
        instances = [_instance_for(semiring, 5, seed) for seed in range(4)]
        self._assert_batch_matches_sequential(shortest_path_matrix("A"), instances)

    def test_apply_sweeps(self):
        expression = apply("gt0", var("A") @ var("A"))
        instances = [_instance_for(REAL, 5, seed) for seed in range(4)]
        self._assert_batch_matches_sequential(expression, instances)

    @staticmethod
    def _assert_batch_matches_sequential(expression, instances):
        semiring = instances[0].semiring
        functions = default_registry()
        plan = compile_expression(expression, instances[0].schema)
        dense = DenseExecutionBackend(semiring)
        sequential = [
            dense.to_dense(execute_plan(plan, dense, instance, functions)).copy()
            for instance in instances
        ]
        backend = BatchedDenseBackend(semiring, len(instances))
        stacked = backend.to_dense(
            execute_plan_batch(plan, backend, instances, functions)
        )
        for index in range(len(instances)):
            assert _entrywise_equal(stacked[index], sequential[index]), semiring.name

    def test_empty_batch_is_rejected(self):
        instance = _instance_for(REAL, 3, 0)
        plan = compile_expression(trace("A"), instance.schema)
        backend = BatchedDenseBackend(REAL, 1)
        with pytest.raises(EvaluationError):
            execute_plan_batch(plan, backend, [], default_registry())

    def test_mismatched_batches_are_rejected(self):
        plan = compile_expression(trace("A"), _instance_for(REAL, 3, 0).schema)
        small, large = _instance_for(REAL, 3, 0), _instance_for(REAL, 4, 0)
        backend = BatchedDenseBackend(REAL, 2)
        with pytest.raises(EvaluationError):
            execute_plan_batch(plan, backend, [small, large], default_registry())
        mixed = [_instance_for(REAL, 3, 0), _instance_for(MIN_PLUS, 3, 0)]
        with pytest.raises(EvaluationError):
            execute_plan_batch(plan, backend, mixed, default_registry())
        with pytest.raises(EvaluationError):
            execute_plan_batch(plan, backend, [small], default_registry())


# ----------------------------------------------------------------------
# Sharding: ragged sweeps, chunking, ordering
# ----------------------------------------------------------------------
class TestSharding:
    def _ragged_sweep(self):
        instances = []
        for seed in range(17):
            size = (3, 5, 8)[seed % 3]
            semiring = (REAL, MIN_PLUS, BOOLEAN)[seed % 3 if seed % 2 else 0]
            instances.append(_instance_for(semiring, size, seed))
        return instances

    @pytest.mark.parametrize("chunk_size", [None, 1, 2, 4, 17, 64])
    def test_evaluate_batch_matches_evaluator(self, chunk_size):
        expression = ssum("_v", var("A") @ var("_v"))
        instances = self._ragged_sweep()
        results = evaluate_batch(expression, instances, chunk_size=chunk_size)
        assert len(results) == len(instances)
        for instance, result in zip(instances, results):
            reference = Evaluator(instance).run(expression)
            assert _entrywise_equal(result, reference)

    def test_evaluate_batch_empty(self):
        assert evaluate_batch(trace("A"), []) == []

    def test_run_plan_batch_rejects_bad_chunk_size(self):
        instance = _instance_for(REAL, 3, 0)
        plan = compile_expression(trace("A"), instance.schema)
        with pytest.raises(EvaluationError):
            run_plan_batch(plan, [instance], default_registry(), chunk_size=0)

    def test_chunk_boundaries_are_seamless(self):
        # 7 instances with chunk size 3: chunks of 3, 3, 1.
        expression = total_sum("A")
        instances = [_instance_for(REAL, 4, seed) for seed in range(7)]
        workload = CompiledWorkload(expression, instances[0].schema)
        chunked = workload.run_batch(instances, chunk_size=3)
        unchunked = workload.run_batch(instances, chunk_size=64)
        sequential = [workload.run(instance) for instance in instances]
        for index in range(7):
            assert np.array_equal(chunked[index], sequential[index])
            assert np.array_equal(unchunked[index], sequential[index])

    def test_results_are_defensive_copies(self):
        instances = [_instance_for(REAL, 3, seed) for seed in range(2)]
        workload = CompiledWorkload(var("A"), instances[0].schema)
        results = workload.run_batch(instances)
        results[0][0, 0] = 123.0
        assert instances[0].matrix("A")[0, 0] != 123.0
        again = workload.run_batch(instances)
        assert again[0][0, 0] != 123.0

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
    def test_sparse_pinned_workload_falls_back_sequentially(self):
        instances = [_instance_for(BOOLEAN, 5, seed) for seed in range(3)]
        workload = CompiledWorkload(
            shortest_path_matrix("A"), instances[0].schema, backend="sparse"
        )
        batched = workload.run_batch(instances)
        for instance, result in zip(instances, batched):
            assert np.array_equal(result, workload.run(instance))

    def test_ragged_near_miss_buckets_merge_into_one_batch(self, monkeypatch):
        """A 15/16/17-node sweep runs as one padded kernel call."""
        import repro.matlang.evaluator as evaluator_module

        expression = ssum("_v", var("A") @ var("_v"))
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)

        for semiring in (BOOLEAN, MIN_PLUS, NATURAL):
            instances = [
                _instance_for(semiring, (15, 16, 17)[seed % 3], seed)
                for seed in range(12)
            ]
            calls.clear()
            merged = run_plan_batch(
                compile_expression(expression, instances[0].schema),
                instances,
                default_registry(),
            )
            assert calls == [12], (
                f"{semiring.name}: near-miss buckets must merge into one batch"
            )
            # Exact semirings: padded results are bitwise-identical.
            for instance, result in zip(instances, merged):
                reference = Evaluator(instance).run(expression)
                assert result.shape == reference.shape
                assert np.array_equal(result, reference), semiring.name

    def test_ragged_merge_float64_is_tolerance_equal(self):
        expression = ssum("_v", var("A") @ var("_v"))
        instances = [
            _instance_for(REAL, (15, 16, 17)[seed % 3], seed) for seed in range(9)
        ]
        merged = CompiledWorkload(expression, instances[0].schema).run_batch(instances)
        for instance, result in zip(instances, merged):
            reference = Evaluator(instance).run(expression)
            assert result.shape == reference.shape
            assert np.allclose(result, reference)

    def test_ragged_merge_skips_far_apart_buckets(self, monkeypatch):
        """8 -> 16 padding quadruples the work; those buckets stay separate."""
        import repro.matlang.evaluator as evaluator_module

        expression = ssum("_v", var("A") @ var("_v"))
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)
        instances = [
            _instance_for(REAL, (4, 9, 16)[seed % 3], seed) for seed in range(9)
        ]
        results = run_plan_batch(
            compile_expression(expression, instances[0].schema),
            instances,
            default_registry(),
        )
        assert len(calls) == 3, "far-apart sizes must not pad into one batch"
        for instance, result in zip(instances, results):
            assert np.array_equal(result, Evaluator(instance).run(expression))

    def test_ragged_outlier_does_not_block_near_miss_merging(self, monkeypatch):
        """15/16/17/40 clusters as {40} plus one padded {15,16,17} batch."""
        import repro.matlang.evaluator as evaluator_module

        expression = ssum("_v", var("A") @ var("_v"))
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)
        instances = [
            _instance_for(MIN_PLUS, size, seed)
            for seed, size in enumerate((15, 16, 17, 40, 15, 16, 17))
        ]
        results = run_plan_batch(
            compile_expression(expression, instances[0].schema),
            instances,
            default_registry(),
        )
        assert sorted(calls) == [1, 6], (
            "the 40-node outlier must not price 15/16/17 out of merging"
        )
        for instance, result in zip(instances, results):
            assert np.array_equal(result, Evaluator(instance).run(expression))

    def test_ragged_merge_skips_padding_unsafe_plans(self, monkeypatch):
        """Plans with apply / loop / power ops never see padded instances."""
        import repro.matlang.evaluator as evaluator_module

        expression = apply("gt0", var("A") @ var("A"))
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)
        instances = [_instance_for(REAL, 15 + seed, seed) for seed in range(3)]
        results = run_plan_batch(
            compile_expression(expression, instances[0].schema),
            instances,
            default_registry(),
        )
        assert len(calls) == 3
        for instance, result in zip(instances, results):
            assert np.array_equal(result, Evaluator(instance).run(expression))

    def test_ragged_false_restores_per_signature_buckets(self, monkeypatch):
        import repro.matlang.evaluator as evaluator_module

        expression = ssum("_v", var("A") @ var("_v"))
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)
        instances = [
            _instance_for(MIN_PLUS, (15, 16, 17)[seed % 3], seed) for seed in range(6)
        ]
        plan = compile_expression(expression, instances[0].schema)
        results = run_plan_batch(plan, instances, default_registry(), ragged=False)
        assert len(calls) == 3
        for instance, result in zip(instances, results):
            assert np.array_equal(result, Evaluator(instance).run(expression))

    def test_ragged_merge_handles_scalar_results(self):
        """A trace workload (1x1 results) survives the padded slice-back."""
        expression = trace("A")
        instances = [
            _instance_for(NATURAL, (15, 16, 17)[seed % 3], seed) for seed in range(6)
        ]
        results = run_plan_batch(
            compile_expression(expression, instances[0].schema),
            instances,
            default_registry(),
        )
        for instance, result in zip(instances, results):
            reference = Evaluator(instance).run(expression)
            assert result.shape == (1, 1)
            assert np.array_equal(result, reference)

    def test_ragged_merge_respects_chunk_size(self, monkeypatch):
        import repro.matlang.evaluator as evaluator_module

        expression = ssum("_v", var("A") @ var("_v"))
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)
        instances = [
            _instance_for(BOOLEAN, (15, 16, 17)[seed % 3], seed) for seed in range(10)
        ]
        results = run_plan_batch(
            compile_expression(expression, instances[0].schema),
            instances,
            default_registry(),
            chunk_size=4,
        )
        assert calls == [4, 4, 2], "padded groups must still honour chunk_size"
        for instance, result in zip(instances, results):
            assert np.array_equal(result, Evaluator(instance).run(expression))

    def test_repeated_run_batch_reuses_stacked_inputs(self):
        expression = ssum("_v", var("A") @ var("_v"))
        instances = [_instance_for(REAL, 4, seed) for seed in range(6)]
        workload = CompiledWorkload(expression, instances[0].schema)

        first = workload.run_batch(instances)
        hits_after_first, misses_after_first, size = workload.stack_cache_info()
        assert size >= 1  # the sweep's stacks were retained

        second = workload.run_batch(instances)
        hits_after_second, misses_after_second, _ = workload.stack_cache_info()
        assert misses_after_second == misses_after_first, (
            "a repeated sweep over the same instances must not re-stack inputs"
        )
        assert hits_after_second > hits_after_first
        for before, after in zip(first, second):
            assert np.array_equal(before, after)

        # Fresh instance objects are a different batch: stacked anew, and
        # still correct.
        fresh = [_instance_for(REAL, 4, seed) for seed in range(6)]
        third = workload.run_batch(fresh)
        _, misses_after_third, _ = workload.stack_cache_info()
        assert misses_after_third > misses_after_second
        for before, after in zip(first, third):
            assert np.array_equal(before, after)


# ----------------------------------------------------------------------
# The sparse tropical backend
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
class TestSparseTropicalBackend:
    def _sparse_weights(self, semiring, size, seed, density=0.25):
        rng = np.random.default_rng(seed)
        weights = np.full((size, size), float(semiring.zero))
        mask = rng.random((size, size)) < density
        weights[mask] = np.round(rng.random(mask.sum()) * 7, 3)
        return weights

    @pytest.mark.parametrize("semiring", TROPICAL, ids=lambda s: s.name)
    def test_operations_agree_with_dense(self, semiring):
        sparse = backend_for(semiring, "sparse")
        assert isinstance(sparse, SparseTropicalBackend)
        dense = DenseExecutionBackend(semiring)
        left = self._sparse_weights(semiring, 7, 0)
        right = self._sparse_weights(semiring, 7, 1)
        pairs = [
            ("matmul", lambda b, x, y: b.matmul(x, y)),
            ("add", lambda b, x, y: b.add(x, y)),
            ("hadamard", lambda b, x, y: b.hadamard(x, y)),
        ]
        for name, operation in pairs:
            expected = dense.to_dense(operation(dense, left.copy(), right.copy()))
            actual = sparse.to_dense(
                operation(sparse, sparse.from_dense(left), sparse.from_dense(right))
            )
            assert np.array_equal(actual, expected), (semiring.name, name)
        singles = [
            ("transpose", lambda b, x: b.transpose(x)),
            ("row_sums", lambda b, x: b.row_sums(x)),
            ("col_sums", lambda b, x: b.col_sums(x)),
            ("trace", lambda b, x: b.trace(x)),
            ("diag_of_diagonal", lambda b, x: b.diag_of_diagonal(x)),
            ("diag_product", lambda b, x: b.diag_product(x)),
            ("power3", lambda b, x: b.power(x, 3)),
            ("hadamard_power3", lambda b, x: b.hadamard_power(x, 3)),
            ("nsum", lambda b, x: b.nsum(x, 4)),
        ]
        for name, operation in singles:
            expected = dense.to_dense(operation(dense, left.copy()))
            actual = sparse.to_dense(operation(sparse, sparse.from_dense(left)))
            assert np.array_equal(actual, expected), (semiring.name, name)

    @pytest.mark.parametrize("semiring", TROPICAL, ids=lambda s: s.name)
    def test_scale_and_constructors(self, semiring):
        sparse = backend_for(semiring, "sparse")
        dense = DenseExecutionBackend(semiring)
        matrix = self._sparse_weights(semiring, 5, 2)
        value = sparse.from_dense(matrix)
        assert np.array_equal(
            sparse.to_dense(sparse.scale(sparse.constant(1.5), value)),
            dense.to_dense(dense.scale(dense.constant(1.5), matrix.copy())),
        )
        zero = sparse.scale(sparse.constant(semiring.zero), value)
        assert zero.nnz == 0
        assert np.array_equal(sparse.to_dense(sparse.identity(4)), dense.identity(4))
        assert np.array_equal(sparse.to_dense(sparse.ones(3, 2)), dense.ones(3, 2))
        assert np.array_equal(
            sparse.to_dense(sparse.basis_column(5, 3)), dense.basis_column(5, 3)
        )
        column = self._sparse_weights(semiring, 5, 3)[:, :1]
        assert np.array_equal(
            sparse.to_dense(sparse.diag(sparse.from_dense(column))),
            dense.to_dense(dense.diag(column.copy())),
        )

    def test_rejects_unsupported_semirings(self):
        with pytest.raises(SemiringError):
            SparseTropicalBackend(REAL)
        with pytest.raises(SemiringError):
            backend_for(REAL, "sparse")
        with pytest.raises(SemiringError):
            backend_for(PROVENANCE, "sparse")

    def test_carrier_violations_rejected_at_lift(self):
        sparse = backend_for(MIN_PLUS, "sparse")
        poisoned = np.array([[0.0, -np.inf], [1.0, 2.0]])
        with pytest.raises(SemiringError):
            sparse.from_dense(poisoned)

    @pytest.mark.parametrize("semiring", TROPICAL, ids=lambda s: s.name)
    def test_evaluator_selects_sparse_tropical(self, semiring):
        weights = self._sparse_weights(semiring, 12, 4)
        instance = Instance.from_matrices({"A": weights}, semiring=semiring)
        expression = shortest_path_matrix("A")
        sparse_result = Evaluator(instance, backend="sparse").run(expression)
        dense_result = Evaluator(instance).run(expression)
        reference = Evaluator(instance, compile=False).run(expression)
        # Same plan, same reduction order: sparse and dense agree bitwise.
        assert np.array_equal(sparse_result, dense_result)
        # The tree-walk associates the float additions differently (the
        # compiled path fuses the closure power into repeated squaring), so
        # agreement with the reference is up to the semiring tolerance.
        assert semiring.matrices_equal(sparse_result, reference, 1e-9)

    def test_shortest_paths_match_floyd_warshall_baseline(self):
        adjacency = random_digraph(10, probability=0.3, seed=5).astype(bool)
        weights = np.where(adjacency, 1.0, np.inf)
        instance = Instance.from_matrices({"A": weights}, semiring=MIN_PLUS)
        result = Evaluator(instance, backend="sparse").run(shortest_path_matrix("A"))
        # Independent reference: iterated min-plus relaxation in numpy.
        n = len(weights)
        distances = np.minimum(weights, np.where(np.eye(n, dtype=bool), 0.0, np.inf))
        for _ in range(n):
            distances = np.minimum(
                distances, (distances[:, :, None] + distances[None, :, :]).min(axis=1)
            )
        assert np.array_equal(result, distances)


# ----------------------------------------------------------------------
# Block-diagonal CSR batching: the batched sparse backend family
# ----------------------------------------------------------------------
SPARSE_BATCH_SEMIRINGS = [BOOLEAN, MIN_PLUS, MAX_PLUS]


def _sparse_matrix(semiring, rows, cols, seed, density=0.2):
    """A semiring matrix whose off-support entries are the semiring zero."""
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    if semiring is BOOLEAN:
        return mask.astype(np.float64)
    weights = np.full((rows, cols), float(semiring.zero))
    weights[mask] = np.round(rng.random(int(mask.sum())) * 7, 3)
    return weights


def _sparse_instance(semiring, dimension, seed, density=0.2):
    return Instance.from_matrices(
        {"A": _sparse_matrix(semiring, dimension, dimension, seed, density)},
        semiring=semiring,
    )


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
class TestBatchedSparseBackend:
    """The block-diagonal backends agree slice-by-slice with the single
    sparse backend (and therefore, transitively, with dense)."""

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_protocol_operations_match_per_instance_sparse(self, semiring):
        from repro.semiring.backends import batched_sparse_backend

        batch = 4
        batched = batched_sparse_backend(semiring, batch)
        single = backend_for(semiring, "sparse")
        slices = [_sparse_matrix(semiring, 6, 6, seed) for seed in range(batch)]
        columns = [_sparse_matrix(semiring, 6, 1, 40 + seed) for seed in range(batch)]
        stack = batched.stack_instance_matrices(slices)
        column_stack = batched.stack_instance_matrices(columns)

        operations = {
            "transpose": (lambda b, value: b.transpose(value), stack, slices),
            "row_sums": (lambda b, value: b.row_sums(value), stack, slices),
            "col_sums": (lambda b, value: b.col_sums(value), stack, slices),
            "trace": (lambda b, value: b.trace(value), stack, slices),
            "diag_of_diagonal": (
                lambda b, value: b.diag_of_diagonal(value), stack, slices
            ),
            "diag_product": (lambda b, value: b.diag_product(value), stack, slices),
            "nsum": (lambda b, value: b.nsum(value, 3), stack, slices),
            "power": (lambda b, value: b.power(value, 3), stack, slices),
            "hadamard_power": (
                lambda b, value: b.hadamard_power(value, 3), stack, slices
            ),
            "diag": (lambda b, value: b.diag(value), column_stack, columns),
        }
        for name, (operation, operand, per_slice) in operations.items():
            expected = [
                single.to_dense(operation(single, single.from_dense(matrix)))
                for matrix in per_slice
            ]
            actual = batched.to_dense(operation(batched, operand))
            for index in range(batch):
                assert np.array_equal(actual[index], expected[index]), (
                    semiring.name,
                    name,
                )

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_binary_operations_and_scale(self, semiring):
        from repro.semiring.backends import batched_sparse_backend

        batch = 3
        batched = batched_sparse_backend(semiring, batch)
        single = backend_for(semiring, "sparse")
        lefts = [_sparse_matrix(semiring, 5, 5, seed) for seed in range(batch)]
        rights = [_sparse_matrix(semiring, 5, 5, 10 + seed) for seed in range(batch)]
        left = batched.stack_instance_matrices(lefts)
        right = batched.stack_instance_matrices(rights)
        for name, operation in [
            ("matmul", lambda b, x, y: b.matmul(x, y)),
            ("add", lambda b, x, y: b.add(x, y)),
            ("hadamard", lambda b, x, y: b.hadamard(x, y)),
        ]:
            expected = [
                single.to_dense(
                    operation(
                        single, single.from_dense(one), single.from_dense(other)
                    )
                )
                for one, other in zip(lefts, rights)
            ]
            actual = batched.to_dense(operation(batched, left, right))
            for index in range(batch):
                assert np.array_equal(actual[index], expected[index]), (
                    semiring.name,
                    name,
                )
        # Scale by a per-block scalar (a trace): each block is scaled by its
        # own factor — the batched analogue of ``scale(trace(X), Y)``.
        factor = batched.trace(left)
        expected = [
            single.to_dense(
                single.scale(
                    single.trace(single.from_dense(one)), single.from_dense(other)
                )
            )
            for one, other in zip(lefts, rights)
        ]
        actual = batched.to_dense(batched.scale(factor, right))
        for index in range(batch):
            assert np.array_equal(actual[index], expected[index]), semiring.name

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_constructors_replicate_per_block(self, semiring):
        from repro.semiring.backends import batched_sparse_backend

        batch = 3
        batched = batched_sparse_backend(semiring, batch)
        single = backend_for(semiring, "sparse")
        for name, batched_value, single_value in [
            ("zeros", batched.zeros(4, 2), single.zeros(4, 2)),
            ("ones", batched.ones(2, 3), single.ones(2, 3)),
            ("identity", batched.identity(4), single.identity(4)),
            ("basis_column", batched.basis_column(5, 2), single.basis_column(5, 2)),
        ]:
            stacked = batched.to_dense(batched_value)
            reference = single.to_dense(single_value)
            assert stacked.shape == (batch,) + reference.shape, name
            for index in range(batch):
                assert np.array_equal(stacked[index], reference), (semiring.name, name)

    def test_stack_rejects_wrong_count_and_shapes(self):
        from repro.semiring.backends import batched_sparse_backend

        backend = batched_sparse_backend(BOOLEAN, 2)
        with pytest.raises(SemiringError):
            backend.stack_instance_matrices([np.zeros((2, 2))])
        with pytest.raises(ValueError):
            backend.stack_instance_matrices([np.zeros((2, 2)), np.zeros((3, 3))])
        with pytest.raises(SemiringError):
            batched_sparse_backend(BOOLEAN, 0)
        with pytest.raises(SemiringError):
            batched_sparse_backend(REAL, 2)

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_all_empty_blocks(self, semiring):
        from repro.semiring.backends import batched_sparse_backend

        batch = 3
        batched = batched_sparse_backend(semiring, batch)
        empty = [np.full((4, 4), float(semiring.zero)) for _ in range(batch)]
        stack = batched.stack_instance_matrices(empty)
        assert stack.nnz == 0
        result = batched.to_dense(batched.power(stack, 3))
        for index in range(batch):
            assert np.array_equal(result[index], empty[index])


# ----------------------------------------------------------------------
# Block-diagonal CSR batching: plan-level equivalence
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
class TestBlockDiagonalPlanEquivalence:
    """Adaptive batched sweeps over sparse-selected instances are bitwise
    equal to per-instance execution — sparse and dense alike."""

    #: Large enough to clear ``AUTO_SPARSE_MIN_DIMENSION`` (64) and sparse
    #: enough that the cost model keeps multiplication chains sparse.
    DIMENSION = 64
    DENSITY = 0.04

    def _sweep(self, semiring, count, expression, density=None):
        instances = [
            _sparse_instance(
                semiring, self.DIMENSION, seed, density or self.DENSITY
            )
            for seed in range(count)
        ]
        plan = compile_expression(expression, instances[0].schema)
        return plan, instances

    def _assert_block_diag_matches_per_instance(
        self, plan, instances, chunk_size=None, expect_mode="sparse"
    ):
        from repro.semiring.backends import plan_physical

        physical = plan_physical(plan, instances[0], None, batch_size=len(instances))
        assert physical.batch_mode == expect_mode, physical.notes
        batched = run_plan_batch(
            plan, instances, default_registry(), chunk_size=chunk_size
        )
        semiring = instances[0].semiring
        dense = DenseExecutionBackend(semiring)
        for instance, result in zip(instances, batched):
            sparse_reference = plan_physical(plan, instance, "sparse")
            expected_sparse = sparse_reference.result_backend.to_dense(
                execute_plan(
                    sparse_reference.plan,
                    sparse_reference.backend,
                    instance,
                    default_registry(),
                    backends=sparse_reference.backends,
                )
            )
            expected_dense = dense.to_dense(
                execute_plan(plan, dense, instance, default_registry())
            )
            assert np.array_equal(result, expected_sparse), semiring.name
            assert np.array_equal(result, expected_dense), semiring.name

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_multiplication_chain_sweeps(self, semiring):
        expression = (var("A") @ var("A")) @ var("A")
        plan, instances = self._sweep(semiring, 5, expression)
        self._assert_block_diag_matches_per_instance(plan, instances)

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_power_sweeps(self, semiring):
        # Repeated squaring over the block-diagonal operand: block structure
        # is closed under every intermediate power.
        expression = (var("A") @ var("A")) @ (var("A") @ var("A"))
        plan, instances = self._sweep(semiring, 4, expression, density=0.02)
        self._assert_block_diag_matches_per_instance(plan, instances)

    def test_closure_sweep_boolean(self):
        # Reachability closure at a density where it stays sparse-selected.
        plan, instances = self._sweep(
            BOOLEAN, 4, shortest_path_matrix("A"), density=0.005
        )
        self._assert_block_diag_matches_per_instance(plan, instances)

    @pytest.mark.parametrize("semiring", SPARSE_BATCH_SEMIRINGS, ids=lambda s: s.name)
    def test_empty_members_ride_along(self, semiring):
        expression = (var("A") @ var("A")) @ var("A")
        plan, instances = self._sweep(semiring, 4, expression)
        hollow = Instance.from_matrices(
            {"A": np.full((self.DIMENSION,) * 2, float(semiring.zero))},
            semiring=semiring,
        )
        instances = instances[:2] + [hollow] + instances[2:]
        self._assert_block_diag_matches_per_instance(plan, instances)

    @pytest.mark.parametrize("chunk_size", [2, 3, 64])
    def test_chunk_boundaries_are_seamless(self, chunk_size):
        expression = (var("A") @ var("A")) @ var("A")
        plan, instances = self._sweep(BOOLEAN, 7, expression)
        self._assert_block_diag_matches_per_instance(
            plan, instances, chunk_size=chunk_size
        )

    def test_ragged_sparse_groups_merge_into_one_batch(self, monkeypatch):
        """Near-miss sparse buckets pad and stack like dense ones."""
        import repro.matlang.evaluator as evaluator_module

        expression = (var("A") @ var("A")) @ var("A")
        calls = []
        original = evaluator_module.execute_plan_batch

        def counting(plan, backend, instances, functions, **kwargs):
            calls.append(len(list(instances)))
            return original(plan, backend, instances, functions, **kwargs)

        monkeypatch.setattr(evaluator_module, "execute_plan_batch", counting)
        sizes = (64, 66, 68)
        instances = [
            _sparse_instance(BOOLEAN, sizes[seed % 3], seed, 0.04)
            for seed in range(9)
        ]
        plan = compile_expression(expression, instances[0].schema)
        merged = run_plan_batch(plan, instances, default_registry())
        assert calls == [9], "near-miss sparse buckets must merge into one batch"
        dense = DenseExecutionBackend(BOOLEAN)
        for instance, result in zip(instances, merged):
            expected = dense.to_dense(
                execute_plan(plan, dense, instance, default_registry())
            )
            assert result.shape == expected.shape
            assert np.array_equal(result, expected)

    def test_sparse_lane_is_actually_selected(self):
        """The sweep runs on the block-diagonal backend, not dense."""
        from repro.semiring.backends import batched_sparse_backend

        expression = (var("A") @ var("A")) @ var("A")
        plan, instances = self._sweep(BOOLEAN, 4, expression)
        batched = batched_sparse_backend(BOOLEAN, len(instances))
        stacked = batched.stack_instance_matrices(
            [instance.matrix("A") for instance in instances]
        )
        chained = batched.matmul(batched.matmul(stacked, stacked), stacked)
        reference = batched.to_dense(chained)
        results = run_plan_batch(plan, instances, default_registry())
        for index, result in enumerate(results):
            assert np.array_equal(result, reference[index])
