"""Tests for the perf-trend gate (``benchmarks/compare_artifacts.py``).

The comparator is pure file-in / verdict-out, so the tier-1 suite can cover
its policy without running a single benchmark: speedups gate, raw timings
never do, and missing measurements report without failing.
"""

import json

import pytest

from benchmarks.compare_artifacts import compare, entry_key, load_artifacts, main


def _artifacts(entries):
    return {"p0x": {entry_key(entry): entry for entry in entries}}


def _entry(op="matmul", size=64, backend="fast", **extra):
    payload = {"op": op, "size": size, "backend": backend, "seconds": 0.01}
    payload.update(extra)
    return payload


class TestCompare:
    def test_within_threshold_passes(self):
        baseline = _artifacts([_entry(speedup=10.0)])
        fresh = _artifacts([_entry(speedup=8.0)])
        report, regressions = compare(baseline, fresh, threshold=0.25)
        assert not regressions
        assert any("ok" in line for line in report)

    def test_regression_beyond_threshold_fails(self):
        baseline = _artifacts([_entry(speedup=10.0)])
        fresh = _artifacts([_entry(speedup=7.0)])
        _, regressions = compare(baseline, fresh, threshold=0.25)
        assert len(regressions) == 1
        assert "REGRESSION" not in regressions[0]  # the marker is report-side
        assert "7.00x" in regressions[0]

    def test_improvements_pass(self):
        baseline = _artifacts([_entry(speedup=5.0)])
        fresh = _artifacts([_entry(speedup=50.0)])
        _, regressions = compare(baseline, fresh, threshold=0.25)
        assert not regressions

    def test_timing_only_entries_never_gate(self):
        baseline = _artifacts([_entry()])
        fresh = _artifacts([_entry()])
        report, regressions = compare(baseline, fresh, threshold=0.25)
        assert not regressions

    def test_missing_and_new_measurements_report_but_pass(self):
        baseline = _artifacts([_entry(op="old", speedup=10.0)])
        fresh = _artifacts([_entry(op="new", speedup=2.0)])
        report, regressions = compare(baseline, fresh, threshold=0.25)
        assert not regressions
        assert any("retired" in line for line in report)
        assert any("new measurement" in line for line in report)

    def test_entries_disambiguated_by_extra_fields(self):
        baseline = _artifacts(
            [_entry(semiring="boolean", speedup=10.0), _entry(semiring="min_plus", speedup=3.0)]
        )
        fresh = _artifacts(
            [_entry(semiring="boolean", speedup=10.0), _entry(semiring="min_plus", speedup=1.0)]
        )
        _, regressions = compare(baseline, fresh, threshold=0.25)
        assert len(regressions) == 1
        assert "min_plus" in regressions[0]

    def test_serving_entries_keyed_by_stream_shape(self):
        # The p06 throughput ratios measure different stream sizes and
        # submitter counts; the key must keep them apart so a gated serving
        # speedup never diffs against the wrong measurement.
        baseline = _artifacts(
            [
                _entry(op="serve-engine", instances=1000, speedup=4.0),
                _entry(op="serve-engine", instances=100, threads=4, speedup=8.0),
            ]
        )
        fresh = _artifacts(
            [
                _entry(op="serve-engine", instances=1000, speedup=3.9),
                _entry(op="serve-engine", instances=100, threads=4, speedup=2.0),
            ]
        )
        report, regressions = compare(baseline, fresh, threshold=0.25)
        assert len(regressions) == 1
        assert "threads=4" in regressions[0]

    def test_serving_throughput_ratio_joins_the_gate(self):
        baseline = _artifacts([_entry(op="serve-engine", backend="service", speedup=4.0)])
        fresh = _artifacts([_entry(op="serve-engine", backend="service", speedup=2.0)])
        _, regressions = compare(baseline, fresh, threshold=0.25)
        assert len(regressions) == 1

    def test_noise_band_speedups_never_gate(self):
        baseline = _artifacts([_entry(speedup=1.3)])
        fresh = _artifacts([_entry(speedup=0.8)])
        report, regressions = compare(baseline, fresh, threshold=0.25)
        assert not regressions
        assert any("noise band" in line for line in report)

    def test_whole_missing_artifact_passes(self):
        baseline = {"p03": {}}
        report, regressions = compare(baseline, {}, threshold=0.25)
        assert not regressions
        assert any("missing from the fresh run" in line for line in report)


class TestEndToEnd:
    def _write(self, directory, bench, entries):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{bench}.json"
        path.write_text(json.dumps({"bench": bench, "entries": entries}))

    def test_load_artifacts(self, tmp_path):
        self._write(tmp_path, "p05", [_entry(speedup=4.0)])
        artifacts = load_artifacts(tmp_path)
        assert set(artifacts) == {"p05"}
        assert len(artifacts["p05"]) == 1

    def test_main_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        self._write(baseline, "p05", [_entry(speedup=10.0)])

        self._write(fresh, "p05", [_entry(speedup=9.0)])
        assert main(["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)]) == 0

        self._write(fresh, "p05", [_entry(speedup=1.0)])
        assert main(["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)]) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.err

    def test_threshold_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--fresh-dir", str(tmp_path), "--threshold", "1.5"])
