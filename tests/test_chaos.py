"""Chaos suite: the serving tier under a seeded storm of injected faults.

Marked ``chaos`` and excluded from the default (tier-1) pytest run — CI
drives it as its own step under ``timeout`` with faulthandler enabled.

The central experiment is the one the robustness subsystem exists for: a
500-request mixed-semiring stream against a pooled engine while a seeded
fault schedule crashes workers, fails shared-memory ring writes and
poisons result shipping.  The invariants:

* **liveness** — every submitted future resolves (a value or a typed
  error); a future that can never resolve is the one forbidden outcome;
* **correctness** — every *successful* result is bitwise-equal to a
  sequential ``evaluate`` of the same request (no shm-ring desync, no
  cross-wired results);
* **typed failures** — every error is either a
  :class:`~repro.exceptions.ServiceError` or the injected fault itself;
* **hygiene** — after shutdown no ``/dev/shm`` segment survives.
"""

import glob
import threading
import time

import numpy as np
import pytest

from repro.exceptions import DeadlineExceededError, ServiceError
from repro.matlang.builder import ssum, var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.service import CoalescingPolicy, Engine, faults
from repro.service.faults import InjectedFault, injected_faults
from repro.service.shm import SEGMENT_PREFIX

pytestmark = pytest.mark.chaos

ALL_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]


@pytest.fixture(autouse=True)
def _pristine_faults():
    yield
    faults.disarm()


def _workload():
    return ssum("_v", var("A") @ var("_v"))


def _matrix_for(semiring, size, seed):
    rng = np.random.default_rng(seed)
    if semiring.name == "boolean":
        return rng.random((size, size)) < 0.4
    if semiring.name == "natural":
        return rng.integers(0, 5, (size, size))
    if semiring.name == "integer":
        return rng.integers(-4, 5, (size, size))
    if semiring.name in ("min_plus", "max_plus"):
        return np.round(rng.random((size, size)) * 9, 3)
    if semiring.name == "provenance":
        matrix = np.empty((size, size), dtype=object)
        for i in range(size):
            for j in range(size):
                matrix[i, j] = (
                    Polynomial.variable(f"x{seed}_{i}_{j}") if rng.random() < 0.5 else 0
                )
        return matrix
    return rng.standard_normal((size, size))


def _entrywise_equal(left, right):
    left, right = np.asarray(left), np.asarray(right)
    if left.shape != right.shape:
        return False
    if left.dtype == object or right.dtype == object:
        return all(left[index] == right[index] for index in np.ndindex(left.shape))
    return bool(np.array_equal(left, right))


def _mixed_stream(total):
    """``total`` (request, expected) pairs cycling semirings, seeds, sizes.

    Sizes vary with the seed so the stream populates several coalescing
    identities (and therefore several worker shards) instead of pinning
    everything to one home worker.
    """
    expression = _workload()
    catalogue = []
    for semiring in ALL_SEMIRINGS:
        for seed in range(3):
            size = 4 if semiring.name == "provenance" else 6 + seed
            instance = Instance.from_matrices(
                {"A": _matrix_for(semiring, size, seed)}, semiring=semiring
            )
            catalogue.append((instance, evaluate(expression, instance)))
    return expression, [catalogue[i % len(catalogue)] for i in range(total)]


class TestChaosStorm:
    def test_pooled_stream_survives_seeded_fault_storm(self):
        total = 500
        expression, stream = _mixed_stream(total)
        # High strike threshold: this storm measures crash *rescue*; the
        # quarantine path has its own deterministic tests.
        policy = CoalescingPolicy(quarantine_strikes=100, quarantine_reset=60.0)
        successes = 0
        errors = []
        with injected_faults(seed=2026) as injector:
            injector.arm("worker.task", "crash", every=17)
            injector.arm("worker.ship", "raise", every=23)
            injector.arm("shm.write", "deny", every=11)
            with Engine(workers=3, policy=policy, memoize=False) as engine:
                for chunk_start in range(0, total, 50):
                    futures = []
                    for index in range(chunk_start, chunk_start + 50):
                        instance, expected = stream[index]
                        # Every 50th request carries an already-dead
                        # deadline: it must shed, not execute.
                        deadline = 1e-9 if index % 50 == 49 else None
                        future = engine.submit(expression, instance, deadline)
                        futures.append((index, future, expected))
                    for index, future, expected in futures:
                        error = future.exception(120)  # liveness: must resolve
                        if error is None:
                            assert _entrywise_equal(future.result(0), expected), (
                                f"request {index} returned a wrong value"
                            )
                            successes += 1
                        else:
                            assert isinstance(error, (ServiceError, InjectedFault)), (
                                f"request {index} failed untyped: {error!r}"
                            )
                            if index % 50 == 49:
                                assert isinstance(error, DeadlineExceededError)
                            errors.append(error)
                snapshot = engine.stats()
        # The storm actually happened...
        assert injector.fired.get("shm.write", 0) >= 1  # parent-side ring denies
        assert snapshot.worker_respawns >= 1
        assert snapshot.shed_expired >= total // 50
        # ...and the tier still served a solid majority.  (The at-most-once
        # rescue contract legitimately fails tasks orphaned by two deaths,
        # so the floor reflects the storm's severity, not a target SLO.)
        assert successes + len(errors) == total
        assert successes >= total * 3 // 5
        assert "respawns=" in snapshot.render()
        # Sparse-batch telemetry is a lane breakdown of the batched totals:
        # it can never exceed them, even under a fault storm.
        assert snapshot.sparse_batched_requests <= snapshot.batched_requests
        assert snapshot.sparse_batches <= snapshot.dispatches
        assert snapshot.sparse_assembly_seconds >= 0.0
        # Hygiene: the pool's segments are gone despite every worker death.
        assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*") == []

    def test_overload_and_deadline_storm_single_process(self):
        # Eight submitter threads race a scheduler that an injected sleep
        # keeps slower than the request deadlines, behind a shallow
        # admission limit: everything must resolve as a value, a deadline
        # shed or an overload rejection — and the accounting must balance.
        expression = _workload()
        instance = Instance.from_matrices(
            {"A": np.random.default_rng(0).standard_normal((6, 6))}, semiring=REAL
        )
        expected = evaluate(expression, instance)
        policy = CoalescingPolicy(default_deadline=0.05, max_queue_depth=64)
        outcomes = []
        outcomes_lock = threading.Lock()
        with injected_faults(seed=11) as injector:
            injector.arm("engine.scheduler", "sleep", seconds=0.08)
            with Engine(policy=policy, memoize=False) as engine:

                def submitter():
                    local = []
                    for _ in range(60):
                        local.append(engine.submit(expression, instance))
                    with outcomes_lock:
                        outcomes.extend(local)

                threads = [threading.Thread(target=submitter) for _ in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                resolved_values = 0
                for future in outcomes:
                    error = future.exception(60)
                    if error is None:
                        assert _entrywise_equal(future.result(0), expected)
                        resolved_values += 1
                    else:
                        assert isinstance(error, ServiceError)
                # A late, generous deadline still gets served: the storm
                # degraded the tier, it did not wedge it.
                assert _entrywise_equal(
                    engine.submit(expression, instance, deadline=30.0).result(30),
                    expected,
                )
                snapshot = engine.stats()
        assert len(outcomes) == 480
        assert snapshot.shed_expired + snapshot.shed_overload >= 1
        # Conservation: everything submitted is accounted served or failed.
        assert snapshot.submitted == snapshot.completed + snapshot.failed
        assert snapshot.queue_depth == 0
