"""Tests for the arithmetic circuit data structure, builders and analysis."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    GateKind,
    balanced_sum_family,
    circuit_statistics,
    elementary_symmetric_two_family,
    inner_product_family,
    monomial_family,
    power_family,
    product_family,
    sum_family,
)
from repro.circuits.analysis import degree_growth, depth_growth, is_polynomial_degree_family
from repro.exceptions import CircuitError


class TestCircuitConstruction:
    def test_manual_circuit(self):
        circuit = Circuit("xy_plus_1", simplify=False)
        x = circuit.add_input("x")
        y = circuit.add_input("y")
        one = circuit.add_constant(1.0)
        circuit.mark_output(circuit.add_sum([circuit.add_product([x, y]), one]))
        circuit.validate()
        assert circuit.evaluate_single({"x": 2.0, "y": 3.0}) == 7.0

    def test_positional_inputs(self):
        circuit = sum_family(3)
        assert circuit.evaluate_single([1.0, 2.0, 3.0]) == 6.0

    def test_wrong_number_of_positional_inputs(self):
        with pytest.raises(CircuitError):
            sum_family(3).evaluate([1.0, 2.0])

    def test_missing_named_input(self):
        with pytest.raises(CircuitError):
            sum_family(2).evaluate({"x_1": 1.0})

    def test_constant_gates_are_cached(self):
        circuit = Circuit()
        assert circuit.add_constant(1.0) == circuit.add_constant(1.0)

    def test_invalid_child_index(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.add_sum([5])

    def test_validate_requires_outputs(self):
        circuit = Circuit()
        circuit.add_input("x")
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_division_gate(self):
        circuit = Circuit(simplify=False)
        x = circuit.add_input("x")
        y = circuit.add_input("y")
        circuit.mark_output(circuit.add_division(x, y))
        assert circuit.evaluate_single({"x": 6.0, "y": 3.0}) == 2.0
        assert circuit.evaluate_single({"x": 6.0, "y": 0.0}) == 0.0

    def test_evaluate_single_requires_unique_output(self):
        circuit = Circuit(simplify=False)
        x = circuit.add_input("x")
        circuit.mark_output(x)
        circuit.mark_output(x)
        with pytest.raises(CircuitError):
            circuit.evaluate_single({"x": 1.0})


class TestSimplification:
    def test_sum_folds_constants(self):
        circuit = Circuit(simplify=True)
        x = circuit.add_input("x")
        result = circuit.add_sum([x, circuit.add_constant(0.0)])
        assert result == x

    def test_product_with_zero_collapses(self):
        circuit = Circuit(simplify=True)
        x = circuit.add_input("x")
        result = circuit.add_product([x, circuit.add_constant(0.0)])
        assert circuit.gate(result).kind == GateKind.CONSTANT
        assert circuit.gate(result).value == 0.0

    def test_product_with_one_collapses(self):
        circuit = Circuit(simplify=True)
        x = circuit.add_input("x")
        assert circuit.add_product([x, circuit.add_constant(1.0)]) == x

    def test_division_by_one_collapses(self):
        circuit = Circuit(simplify=True)
        x = circuit.add_input("x")
        assert circuit.add_division(x, circuit.add_constant(1.0)) == x


class TestMetrics:
    def test_degree_of_product_family(self):
        assert product_family(5).degree() == 5

    def test_degree_of_sum_family(self):
        assert sum_family(5).degree() == 1

    def test_degree_of_power_family(self):
        assert power_family(6).degree() == 6

    def test_depth_of_balanced_sum(self):
        assert balanced_sum_family(8).depth() == 3
        assert balanced_sum_family(9).depth() == 4

    def test_size_counts_gates_and_wires(self):
        circuit = sum_family(4)
        assert circuit.size() == circuit.num_gates() + circuit.num_wires()

    def test_statistics(self):
        stats = circuit_statistics(inner_product_family(6))
        assert stats.num_inputs == 6
        assert stats.num_outputs == 1
        assert stats.degree == 2
        assert stats.as_dict()["degree"] == 2

    def test_degree_and_depth_growth(self):
        growth = degree_growth(product_family, [1, 2, 4])
        assert growth == ((1, 1), (2, 2), (4, 4))
        depths = depth_growth(balanced_sum_family, [2, 4, 8])
        assert [depth for _, depth in depths] == [1, 2, 3]

    def test_polynomial_degree_family_check(self):
        assert is_polynomial_degree_family(product_family, [2, 4, 8], order=1)
        assert is_polynomial_degree_family(elementary_symmetric_two_family, [2, 4, 8])


class TestBuilderSemantics:
    @pytest.mark.parametrize("dimension", [1, 2, 5])
    def test_sum_families_agree(self, dimension, rng):
        values = rng.uniform(-1, 1, size=dimension)
        assert np.isclose(
            sum_family(dimension).evaluate_single(list(values)),
            balanced_sum_family(dimension).evaluate_single(list(values)),
        )

    def test_inner_product(self):
        assert inner_product_family(4).evaluate_single([1.0, 2.0, 3.0, 4.0]) == 1 * 3 + 2 * 4

    def test_elementary_symmetric(self):
        assert elementary_symmetric_two_family(3).evaluate_single([1.0, 2.0, 3.0]) == 11.0

    def test_monomial_family(self):
        assert monomial_family(3).evaluate_single([2.0, 3.0, 4.0]) == 24.0 + 4.0
