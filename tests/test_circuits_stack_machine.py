"""Tests for the two-stack depth-first evaluation (Appendix D.2, Algorithms 1-3)."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    balanced_sum_family,
    elementary_symmetric_two_family,
    evaluate_with_stacks,
    inner_product_family,
    power_family,
    product_family,
    sum_family,
)
from repro.exceptions import CircuitError


FAMILIES = [
    sum_family,
    balanced_sum_family,
    product_family,
    inner_product_family,
    elementary_symmetric_two_family,
    power_family,
]


class TestCorrectness:
    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("dimension", [1, 2, 4, 7])
    def test_agrees_with_bottom_up_evaluation(self, family, dimension, rng):
        circuit = family(dimension)
        values = list(rng.uniform(-2, 2, size=dimension))
        expected = circuit.evaluate_single(values)
        trace = evaluate_with_stacks(circuit, values)
        assert np.isclose(trace.result, expected)

    def test_named_inputs(self):
        circuit = sum_family(3)
        trace = evaluate_with_stacks(circuit, {"x_1": 1.0, "x_2": 2.0, "x_3": 3.0})
        assert trace.result == 6.0

    def test_constant_only_circuit(self):
        circuit = Circuit(simplify=False)
        one = circuit.add_constant(1.0)
        circuit.mark_output(circuit.add_sum([one, one]))
        assert evaluate_with_stacks(circuit, []).result == 2.0

    def test_repeated_child_is_handled(self):
        """x^n circuits have the same gate n times as a child (see module docstring)."""
        circuit = power_family(5)
        assert evaluate_with_stacks(circuit, [2.0, 0.0, 0.0, 0.0, 0.0]).result == 32.0

    def test_division_gates_are_rejected(self):
        circuit = Circuit(simplify=False)
        x = circuit.add_input("x")
        y = circuit.add_input("y")
        circuit.mark_output(circuit.add_division(x, y))
        with pytest.raises(CircuitError):
            evaluate_with_stacks(circuit, [1.0, 2.0])

    def test_multi_output_requires_explicit_gate(self):
        circuit = Circuit(simplify=False)
        x = circuit.add_input("x")
        circuit.mark_output(x)
        circuit.mark_output(circuit.add_sum([x, x]))
        with pytest.raises(CircuitError):
            evaluate_with_stacks(circuit, [3.0])
        assert evaluate_with_stacks(circuit, [3.0], output=circuit.outputs[1]).result == 6.0

    def test_wrong_input_count(self):
        with pytest.raises(CircuitError):
            evaluate_with_stacks(sum_family(3), [1.0])

    def test_max_steps_guard(self):
        circuit = product_family(6)
        with pytest.raises(CircuitError):
            evaluate_with_stacks(circuit, [1.0] * 6, max_steps=3)


class TestStackProfile:
    def test_stack_depth_bounded_by_circuit_depth(self):
        """The gates stack never exceeds depth + 1 (the key fact behind Theorem 5.1)."""
        for family in FAMILIES:
            for dimension in (2, 4, 8):
                circuit = family(dimension)
                trace = evaluate_with_stacks(circuit, [1.0] * dimension)
                assert trace.max_gates_stack <= circuit.depth() + 1
                assert trace.max_values_stack <= trace.max_gates_stack

    def test_fits_in_matrix_encoding_for_log_depth_families(self):
        for dimension in (4, 8, 16):
            circuit = balanced_sum_family(dimension)
            trace = evaluate_with_stacks(circuit, [1.0] * dimension)
            assert trace.fits_in_matrix_encoding(dimension)

    def test_step_count_is_positive_and_recorded(self):
        trace = evaluate_with_stacks(sum_family(4), [1.0] * 4)
        assert trace.steps > 0
