"""Tests for the two compilation directions of Section 5 (Theorems 5.1 and 5.3)."""

import numpy as np
import pytest

from repro.circuits import (
    balanced_sum_family,
    circuit_to_expression,
    compile_expression,
    elementary_symmetric_two_family,
    family_from_machine,
    inner_product_family,
    power_family,
    product_family,
    sum_family,
)
from repro.circuits.families import UniformCircuitFamily, standard_families
from repro.exceptions import CircuitError
from repro.matlang.builder import apply, forloop, var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.matlang.schema import Schema
from repro.stdlib import csanky_determinant, four_clique_count, trace, transitive_closure_floyd_warshall
from repro.turing import sum_circuit_description_machine

SCHEMA = Schema({"A": ("alpha", "alpha"), "u": ("alpha", "1")})


class TestMatlangToCircuits:
    """Theorem 5.3: for-MATLANG expressions compile to circuits over matrices."""

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_matrix_product(self, dimension, rng):
        matrix = rng.uniform(-1, 1, size=(dimension, dimension))
        compiled = compile_expression(var("A") @ var("A"), SCHEMA, dimension)
        assert np.allclose(compiled.evaluate({"A": matrix}), matrix @ matrix)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_trace(self, dimension, rng):
        matrix = rng.uniform(-1, 1, size=(dimension, dimension))
        compiled = compile_expression(trace("A"), SCHEMA, dimension)
        assert np.isclose(compiled.evaluate({"A": matrix})[0, 0], np.trace(matrix))

    def test_four_clique(self):
        adjacency = np.ones((4, 4)) - np.eye(4)
        compiled = compile_expression(four_clique_count("A"), SCHEMA, 4)
        assert compiled.evaluate({"A": adjacency})[0, 0] == 24.0

    def test_floyd_warshall(self, rng):
        adjacency = (rng.random((4, 4)) < 0.4).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        compiled = compile_expression(transitive_closure_floyd_warshall("A"), SCHEMA, 4)
        instance = Instance.from_matrices({"A": adjacency})
        direct = evaluate(transitive_closure_floyd_warshall("A"), instance)
        assert np.allclose(compiled.evaluate({"A": adjacency}), direct)

    def test_division_compiles_to_division_gates(self, rng):
        matrix = rng.uniform(1, 2, size=(3, 3)) + 3 * np.eye(3)
        compiled = compile_expression(csanky_determinant("A"), SCHEMA, 3)
        assert np.isclose(
            compiled.evaluate({"A": matrix})[0, 0], np.linalg.det(matrix), rtol=1e-8
        )

    def test_vector_inputs(self, rng):
        vector = rng.uniform(-1, 1, size=3)
        compiled = compile_expression(var("u").T @ var("u"), SCHEMA, 3)
        assert np.isclose(compiled.evaluate({"u": vector})[0, 0], float(vector @ vector))

    def test_unsupported_function_raises(self):
        with pytest.raises(CircuitError):
            compile_expression(apply("gt0", var("A")), SCHEMA, 2)

    def test_degree_matches_expectation(self):
        compiled = compile_expression(trace("A"), SCHEMA, 4)
        assert compiled.circuit.degree() == 1
        compiled2 = compile_expression(var("A") @ var("A"), SCHEMA, 2)
        assert compiled2.circuit.degree() == 2 * 4  # degree 2 per output entry

    def test_compile_requires_positive_dimension(self):
        with pytest.raises(CircuitError):
            compile_expression(var("A"), SCHEMA, 0)

    def test_missing_input_matrix(self):
        compiled = compile_expression(var("A") @ var("u"), SCHEMA, 2)
        with pytest.raises(CircuitError):
            compiled.evaluate({"A": np.eye(2)})

    def test_loop_unrolling_matches_evaluator(self, rng):
        expression = forloop("v", "X", var("X") @ var("A") + var("A"), init=var("A"))
        matrix = rng.uniform(-1, 1, size=(3, 3))
        compiled = compile_expression(expression, SCHEMA, 3)
        direct = evaluate(expression, Instance.from_matrices({"A": matrix}))
        assert np.allclose(compiled.evaluate({"A": matrix}), direct)


class TestCircuitsToMatlang:
    """Theorem 5.1 direction: circuits become for-MATLANG expressions."""

    FAMILIES = [
        sum_family,
        balanced_sum_family,
        product_family,
        inner_product_family,
        elementary_symmetric_two_family,
        power_family,
    ]

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("dimension", [1, 2, 3, 5])
    def test_translation_preserves_values(self, family, dimension, rng):
        circuit = family(dimension)
        values = rng.uniform(-2, 2, size=dimension)
        expression = circuit_to_expression(circuit)
        # Declare the input vector type explicitly so that dimension 1 is not
        # mistaken for a scalar instance.
        schema = Schema({"v": ("alpha", "1")})
        instance = Instance(schema, {"alpha": dimension}, {"v": values.reshape(-1, 1)})
        translated = evaluate(expression, instance)[0, 0]
        assert np.isclose(translated, circuit.evaluate_single(list(values)))

    def test_multi_output_circuit_needs_explicit_output(self):
        circuit = sum_family(2)
        circuit.mark_output(circuit.outputs[0])
        with pytest.raises(CircuitError):
            circuit_to_expression(circuit)

    def test_roundtrip_circuit_to_matlang_to_circuit(self, rng):
        """Composing both directions preserves the computed function."""
        original = inner_product_family(4)
        expression = circuit_to_expression(original)
        schema = Schema({"v": ("alpha", "1")})
        recompiled = compile_expression(expression, schema, 4)
        values = rng.uniform(-1, 1, size=4)
        assert np.isclose(
            recompiled.evaluate({"v": values})[0, 0], original.evaluate_single(list(values))
        )


class TestUniformFamilies:
    def test_standard_families_registry(self):
        families = standard_families()
        assert "sum" in families and "product" in families
        assert families["product"].circuit(3).degree() == 3

    def test_family_caching(self):
        family = UniformCircuitFamily("sum", sum_family)
        assert family.circuit(4) is family.circuit(4)

    def test_family_rejects_non_positive_dimension(self):
        family = UniformCircuitFamily("sum", sum_family)
        with pytest.raises(CircuitError):
            family.circuit(0)

    def test_degree_and_depth_sweeps(self):
        family = UniformCircuitFamily("product", product_family)
        assert family.degrees([1, 2, 3]) == {1: 1, 2: 2, 3: 3}
        assert family.depths([2, 4]) == {2: 1, 4: 1}

    def test_turing_machine_backed_family(self, rng):
        """Uniformity via a machine: the TM emits the description of Phi_n."""
        family = family_from_machine(sum_circuit_description_machine(), "tm_sum")
        for dimension in (1, 3, 5):
            circuit = family.circuit(dimension)
            values = rng.uniform(-1, 1, size=dimension)
            assert np.isclose(circuit.evaluate_single(list(values)), values.sum())
