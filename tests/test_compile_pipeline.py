"""Tests for the compile-then-execute pipeline.

Covers four concerns:

* **equivalence** — every fragment generator and stdlib construction
  evaluates identically through the plan executor and the retained
  reference tree-walk, across all registered semirings that support the
  workload;
* **fusion** — the rewrite rules fire on the canonical body shapes and the
  fused plans contain no residual Python-level loop;
* **plan structure** — CSE and loop-invariant hoisting actually move work
  out of loop bodies;
* **caching** — compiling once and evaluating against many same-schema
  instances performs no re-lowering, and the sparse boolean backend agrees
  with the dense kernels.
"""

import numpy as np
import pytest

from repro.exceptions import EvaluationError, SemiringError
from repro.experiments.harness import CompiledWorkload
from repro.experiments.workloads import (
    random_digraph,
    random_integer_matrix,
    random_matrix,
    random_sum_matlang_expression,
)
from repro.matlang.ast import Apply
from repro.matlang.builder import apply, forloop, had, ones, prod, ssum, var
from repro.matlang.compiler import (
    clear_plan_cache,
    compile_expression,
    plan_cache_info,
)
from repro.matlang.evaluator import Evaluator
from repro.matlang.instance import Instance
from repro.matlang.schema import Schema
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.backends import SparseBooleanBackend, backend_for
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.stdlib import (
    diag_via_for,
    diagonal_product,
    column_sums,
    ones_via_for,
    row_sums,
    shortest_path_matrix,
    total_sum,
    trace,
    transitive_closure_floyd_warshall,
    transitive_closure_product,
    triangle_count,
)
from repro.stdlib.order import s_less, s_less_equal

try:
    import scipy.sparse  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    HAVE_SCIPY = False


def _both_paths(expression, instance, functions=None):
    """Evaluate through the compiled pipeline and the reference tree-walk."""
    compiled = Evaluator(instance, functions, compile=True).run(expression)
    interpreted = Evaluator(instance, functions, compile=False).run(expression)
    return compiled, interpreted


def _assert_equivalent(expression, instance, functions=None):
    compiled, interpreted = _both_paths(expression, instance, functions)
    assert compiled.shape == interpreted.shape
    assert instance.semiring.matrices_equal(compiled, interpreted, 1e-9), (
        f"compiled and interpreted results differ for {expression}\n"
        f"compiled:\n{compiled}\ninterpreted:\n{interpreted}"
    )


def _instance_for(semiring, dimension=4, seed=0):
    """A square instance with A, B matrices valid in the semiring's carrier."""
    if semiring.name == "boolean":
        a = random_digraph(dimension, probability=0.4, seed=seed)
        b = random_digraph(dimension, probability=0.4, seed=seed + 1)
    elif semiring.name in ("natural", "integer"):
        a = random_integer_matrix(dimension, seed=seed)
        b = random_integer_matrix(dimension, seed=seed + 1)
    elif semiring.name in ("min_plus", "max_plus"):
        a = np.abs(random_matrix(dimension, seed=seed))
        b = np.abs(random_matrix(dimension, seed=seed + 1))
    elif semiring.name == "provenance":
        rng = np.random.default_rng(seed)
        a = np.empty((dimension, dimension), dtype=object)
        b = np.empty((dimension, dimension), dtype=object)
        for i in range(dimension):
            for j in range(dimension):
                a[i, j] = Polynomial.variable(f"a{i}{j}") if rng.random() < 0.5 else 0
                b[i, j] = Polynomial.variable(f"b{i}{j}") if rng.random() < 0.5 else 0
    else:
        a = random_matrix(dimension, seed=seed)
        b = random_matrix(dimension, seed=seed + 1)
    return Instance.from_matrices({"A": a, "B": b}, semiring=semiring)


ALL_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]
NUMERIC_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS]


# ----------------------------------------------------------------------
# Compiled-vs-interpreted equivalence
# ----------------------------------------------------------------------
class TestEquivalenceProperty:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(8))
    def test_random_sum_matlang_expressions(self, semiring, seed):
        expression = random_sum_matlang_expression(seed=seed, depth=3)
        instance = _instance_for(semiring, dimension=3, seed=seed)
        _assert_equivalent(expression, instance)

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize(
        "builder",
        [
            trace,
            diagonal_product,
            row_sums,
            column_sums,
            total_sum,
            lambda a: ssum("_s1", ssum("_s2", var("_s1") @ var("_s2").T)),
            lambda a: prod("_p", var(a)),
            lambda a: had("_h", var(a)),
            lambda a: forloop("_v", "_X", var("_X") @ var(a), init=var(a)),
        ],
        ids=[
            "trace",
            "diagonal_product",
            "row_sums",
            "column_sums",
            "total_sum",
            "ones_outer",
            "matrix_power",
            "hadamard_power",
            "initialised_power_loop",
        ],
    )
    def test_stdlib_constructions_all_semirings(self, semiring, builder):
        instance = _instance_for(semiring, dimension=4, seed=3)
        _assert_equivalent(builder("A"), instance)

    # The order constructions use the literal -1, which is outside the
    # carrier of the naturals (both evaluation paths reject it there).
    @pytest.mark.parametrize(
        "semiring", [REAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS], ids=lambda s: s.name
    )
    def test_order_and_loop_stdlib(self, semiring):
        instance = _instance_for(semiring, dimension=4, seed=5)
        for expression in (
            ones_via_for(),
            diag_via_for(ones(var("A"))),
            s_less(),
            s_less_equal(),
        ):
            _assert_equivalent(expression, instance)

    def test_graph_closures_real_and_boolean(self):
        adjacency = random_digraph(6, probability=0.3, seed=7)
        for semiring in (REAL, BOOLEAN, NATURAL):
            instance = Instance.from_matrices({"A": adjacency}, semiring=semiring)
            _assert_equivalent(transitive_closure_floyd_warshall("A"), instance)
            _assert_equivalent(transitive_closure_product("A"), instance)
            if semiring is not NATURAL:
                # triangle_count's distinctness factor uses the literal -1,
                # which the naturals reject on both evaluation paths.
                _assert_equivalent(triangle_count("A"), instance)

    def test_shortest_paths_min_plus(self):
        weights = np.abs(random_matrix(6, seed=11))
        weights[weights < 0.5] = np.inf
        instance = Instance.from_matrices({"A": weights}, semiring=MIN_PLUS)
        _assert_equivalent(shortest_path_matrix("A"), instance)

    def test_apply_workloads(self):
        instance = _instance_for(REAL, dimension=4, seed=13)
        for expression in (
            apply("gt0", var("A")),
            apply("div", var("A"), var("B")),
            apply("mul", var("A"), var("B"), var("A")),
            apply("add", var("A"), var("B")),
            apply("square", var("A")),
            apply("sub", var("A"), var("B")),
            apply("neg", var("A")),
            apply("nonzero", var("A") @ var("B")),
        ):
            _assert_equivalent(expression, instance)

    def test_linalg_lu_over_reals(self):
        from repro.experiments.workloads import random_lu_factorizable_matrix
        from repro.stdlib.linalg import lu_lower

        matrix = random_lu_factorizable_matrix(4, seed=17)
        instance = Instance.from_matrices({"A": matrix})
        _assert_equivalent(lu_lower("A"), instance)


# ----------------------------------------------------------------------
# Fusion and plan structure
# ----------------------------------------------------------------------
class TestFusion:
    def setup_method(self):
        clear_plan_cache()

    def test_trace_fuses_to_a_single_op(self, square_instance, square_matrix):
        plan = compile_expression(trace("A"), square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("trace") == 1
        result = Evaluator(square_instance).run(trace("A"))
        assert np.isclose(result[0, 0], np.trace(square_matrix))

    def test_row_and_column_sum_loops_fuse(self, square_instance, square_matrix):
        sum_rows = ssum("_v", var("A") @ var("_v"))
        sum_cols = ssum("_v", var("_v").T @ var("A"))
        plan_rows = compile_expression(sum_rows, square_instance.schema)
        plan_cols = compile_expression(sum_cols, square_instance.schema)
        assert plan_rows.count_ops("loop") == 0 and plan_rows.count_ops("row_sums") == 1
        assert plan_cols.count_ops("loop") == 0 and plan_cols.count_ops("col_sums") == 1
        assert np.allclose(
            Evaluator(square_instance).run(sum_rows).ravel(), square_matrix.sum(axis=1)
        )
        assert np.allclose(
            Evaluator(square_instance).run(sum_cols).ravel(), square_matrix.sum(axis=0)
        )

    def test_selector_sum_is_the_identity(self, square_instance):
        expression = ssum("_v", var("_v") @ var("_v").T)
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("identity_sym") == 1

    def test_diag_via_for_fuses_to_diag(self, square_instance):
        expression = diag_via_for(ones(var("A")))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("diag") == 1

    def test_diagonal_filter_fuses(self, square_instance, square_matrix):
        v = var("_v")
        expression = ssum("_v", (v.T @ var("A") @ v) * (v @ v.T))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("diag_of_diag") == 1
        result = Evaluator(square_instance).run(expression)
        assert np.allclose(result, np.diag(np.diag(square_matrix)))

    def test_invariant_product_loop_fuses_to_power(self, square_instance):
        expression = shortest_path_matrix("A")
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("power") == 1

    def test_invariant_sum_fuses_to_nsum(self, square_instance, square_matrix):
        expression = ssum("_v", var("A"))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("nsum") == 1
        result = Evaluator(square_instance).run(expression)
        assert np.allclose(result, 4 * square_matrix)

    def test_diagonal_product_fuses(self, square_instance, square_matrix):
        plan = compile_expression(diagonal_product("A"), square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("diag_product") == 1
        result = Evaluator(square_instance).run(diagonal_product("A"))
        assert np.isclose(result[0, 0], np.prod(np.diag(square_matrix)))

    def test_loop_invariant_subexpressions_are_hoisted(self, square_instance):
        # The Floyd-Warshall inner sums depend on the loop binders, but the
        # A.A product below does not: it must be computed outside the loop.
        body = var("_X") @ (var("A") @ var("A")) + var("_v") @ var("_v").T
        expression = forloop("_v", "_X", body, init=var("A"))
        plan = compile_expression(expression, square_instance.schema)
        (loop_op,) = [op for op in plan.ops if op.opcode == "loop"]
        # No variable loads and no matmul of loads inside the body: the
        # invariant product arrives through a capture.
        assert loop_op.body.count_ops("load") == 0
        assert loop_op.body.count_ops("capture") >= 1
        assert plan.count_ops("load") == 1  # A is loaded exactly once (CSE)

    def test_structural_cse_shares_repeated_subtrees(self, square_instance):
        expression = (var("A") @ var("A")) + (var("A") @ var("A"))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("matmul") == 1
        assert plan.count_ops("load") == 1

    def test_describe_renders_every_op(self, square_instance):
        plan = compile_expression(trace("A"), square_instance.schema)
        text = plan.describe()
        assert "trace" in text and "return" in text


# ----------------------------------------------------------------------
# PR 3 fusion gaps: Add-body split and nested total-sum (rewrite-fires)
# ----------------------------------------------------------------------
class TestAddSplitAndNestedFusion:
    def setup_method(self):
        clear_plan_cache()

    def test_add_body_splits_when_both_summands_fuse(self, square_instance, square_matrix):
        A, v = var("A"), var("_v")
        expression = ssum("_v", (A @ v) + (A.T @ v))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0, "Add split must eliminate the loop"
        assert plan.count_ops("row_sums") == 2
        assert plan.count_ops("add") == 1
        result = Evaluator(square_instance).run(expression)
        expected = square_matrix.sum(axis=1) + square_matrix.sum(axis=0)
        assert np.allclose(result.ravel(), expected)
        _assert_equivalent(expression, square_instance)

    def test_add_split_recurses_through_nested_adds(self, square_instance):
        A, v = var("A"), var("_v")
        expression = ssum("_v", ((A @ v) + (A.T @ v)) + ((A @ A) @ v))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        # The single-matrix summands fuse to row_sums; the (A @ A) @ v
        # summand goes one better — cost-based ordering pushes the summed
        # ones vector into the chain (A . (A . 1)), skipping the matrix
        # product entirely.
        assert plan.count_ops("row_sums") == 2
        assert plan.count_ops("ones_type") == 1
        _assert_equivalent(expression, square_instance)

    def test_half_fusible_add_declines_and_leaves_no_dead_ops(self, square_instance):
        A, v = var("A"), var("_v")
        expression = ssum("_v", (A @ v) + apply("gt0", v))
        plan = compile_expression(expression, square_instance.schema)
        # The right summand cannot fuse, so the loop stays — and the
        # speculatively emitted left-side row_sums must have been pruned.
        assert plan.count_ops("loop") == 1
        assert plan.count_ops("row_sums") == 0
        _assert_equivalent(expression, square_instance)

    @pytest.mark.parametrize("semiring", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
    def test_add_split_agrees_across_semirings(self, semiring):
        A, v = var("A"), var("_v")
        expression = ssum("_v", (A @ v) + (var("B") @ v))
        instance = _instance_for(semiring)
        _assert_equivalent(expression, instance)

    def test_nested_total_sum_fuses(self, square_instance, square_matrix):
        A, u, v = var("A"), var("_u"), var("_v")
        expression = ssum("_u", ssum("_v", u.T @ A @ v))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0, "nested total sum must fuse"
        assert plan.count_ops("col_sums") == 1
        assert plan.count_ops("row_sums") == 1
        result = Evaluator(square_instance).run(expression)
        assert np.isclose(result[0, 0], square_matrix.sum())
        _assert_equivalent(expression, square_instance)

    def test_nested_total_sum_fuses_with_swapped_iterators(
        self, square_instance, square_matrix
    ):
        A, u, v = var("A"), var("_u"), var("_v")
        # The *inner* iterator takes the row side: Sigma_u Sigma_v v^T A u.
        expression = ssum("_u", ssum("_v", v.T @ A @ u))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        result = Evaluator(square_instance).run(expression)
        assert np.isclose(result[0, 0], square_matrix.sum())
        _assert_equivalent(expression, square_instance)

    def test_nested_total_sum_through_for_loop_sugar(self, square_instance, square_matrix):
        A, u, v = var("A"), var("_u"), var("_v")
        expression = ssum("_u", forloop("_v", "_X", var("_X") + (u.T @ A @ v)))
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        result = Evaluator(square_instance).run(expression)
        assert np.isclose(result[0, 0], square_matrix.sum())
        _assert_equivalent(expression, square_instance)

    def test_total_sum_stdlib_now_fuses_completely(self, square_instance, square_matrix):
        plan = compile_expression(total_sum("A"), square_instance.schema)
        assert plan.count_ops("loop") == 0
        result = Evaluator(square_instance).run(total_sum("A"))
        assert np.isclose(result[0, 0], square_matrix.sum())

    def test_nested_sum_with_offdiagonal_body_still_works(self, square_instance):
        # Body does not match the bilinear pattern (extra transpose): must
        # fall back without changing semantics.
        A, u, v = var("A"), var("_u"), var("_v")
        expression = ssum("_u", ssum("_v", (u.T @ A @ v) + (u.T @ v)))
        _assert_equivalent(expression, square_instance)

    def test_eliminated_for_loop_keeps_initialiser(self, square_instance):
        # The loop body ignores both binders, so the loop collapses — but
        # the initialiser must still be evaluated for error parity with the
        # interpreter, so its matmul survives dead-op pruning (pinned).
        A = var("A")
        expression = forloop("_v", "_X", A + A, init=A @ A)
        plan = compile_expression(expression, square_instance.schema)
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("matmul") == 1, "pinned initialiser must survive pruning"
        _assert_equivalent(expression, square_instance)


# ----------------------------------------------------------------------
# Plan caching
# ----------------------------------------------------------------------
class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def test_same_schema_instances_share_one_plan(self):
        expression = trace("A")
        instances = [
            Instance.from_matrices({"A": random_matrix(8, seed=seed)})
            for seed in range(5)
        ]
        results = []
        for instance in instances:
            results.append(Evaluator(instance).run(expression))
        info = plan_cache_info()
        assert info.misses == 1, "re-evaluation must not re-lower"
        assert info.hits == len(instances) - 1
        for instance, result in zip(instances, results):
            assert np.isclose(
                result[0, 0], np.trace(np.asarray(instance.matrix("A")))
            )

    def test_plans_are_symbolic_in_the_dimensions(self):
        # One plan serves instances of *different sizes* of the same schema.
        expression = ssum("_v", var("A") @ var("_v"))
        for size in (2, 5, 9):
            instance = Instance.from_matrices({"A": random_matrix(size, seed=size)})
            result = Evaluator(instance).run(expression)
            assert result.shape == (size, 1)
        assert plan_cache_info().misses == 1

    def test_run_typed_hits_the_same_cache_as_run(self, square_instance):
        from repro.matlang.typecheck import annotate

        expression = trace("A")
        typed = annotate(expression, square_instance.schema)
        evaluator = Evaluator(square_instance)
        first = evaluator.run(expression)
        second = evaluator.run_typed(typed)
        assert np.allclose(first, second)
        assert plan_cache_info().misses == 1

    def test_mismatched_run_typed_cannot_poison_the_cache(self):
        # Regression: a tree annotated against a *different* schema used to
        # be cached under the evaluator's schema key, breaking every later
        # correct evaluation of the same expression process-wide.
        from repro.matlang.typecheck import annotate

        expression = ssum("_v", var("A"))
        foreign_schema = Schema({"A": ("m", "m")})
        foreign_typed = annotate(expression, foreign_schema)

        instance = Instance.from_matrices({"A": random_matrix(3, seed=1)})
        evaluator = Evaluator(instance)
        # The mismatched call may fail on its own terms ('m' has no
        # dimension here) — that is the historical run_typed contract.
        with pytest.raises(Exception):
            evaluator.run_typed(foreign_typed)
        # ...but a correct evaluation afterwards must be unaffected.
        result = evaluator.run(expression)  # Sigma_v A = 3 x A over dim 3
        assert np.allclose(result, 3.0 * np.asarray(instance.matrix("A")))

    def test_hand_built_trees_are_lowered_uncached(self, square_instance):
        from repro.matlang.compiler import compile_typed
        from repro.matlang.typecheck import TypedExpression

        typed = TypedExpression(var("A"), ("alpha", "alpha"), ())
        before = plan_cache_info()
        plan = compile_typed(typed, square_instance.schema)
        after = plan_cache_info()
        assert plan.count_ops("load") == 1
        assert after.size == before.size  # nothing stored for unknown provenance

    def test_compiled_workload_runs_across_instances(self):
        schema = Schema({"A": ("alpha", "alpha")})
        workload = CompiledWorkload(trace("A"), schema)
        for seed in range(3):
            matrix = random_matrix(6, seed=seed)
            instance = Instance.from_matrices({"A": matrix})
            result = workload.run(instance)
            assert np.isclose(result[0, 0], np.trace(matrix))
        assert plan_cache_info().misses == 1


# ----------------------------------------------------------------------
# Error behaviour parity with the interpreter
# ----------------------------------------------------------------------
class TestCompiledErrors:
    def test_unconstrained_iterator_raises(self):
        schema = Schema({"A": ("alpha", "alpha"), "B": ("beta", "beta")})
        instance = Instance(
            schema, {"alpha": 2, "beta": 3}, {"A": np.eye(2), "B": np.eye(3)}
        )
        with pytest.raises(EvaluationError):
            Evaluator(instance).run(forloop("v", "X", var("v")))

    def test_shared_binder_name_matches_the_interpreter(self, square_instance):
        # Degenerate but legal: iterator and accumulator share a name.  The
        # interpreter binds the iterator first and the accumulator second
        # into one environment slot, so the accumulator shadows; the
        # compiled path must resolve the name identically.
        expression = forloop("v", "v", var("v"))
        _assert_equivalent(expression, square_instance)
        body = var("v") + ssum("_u", var("_u") @ var("v").T)
        _assert_equivalent(forloop("v", "v", body), square_instance)

    def test_nullary_apply_raises_evaluation_error(self, square_instance):
        from repro.matlang.typecheck import TypedExpression

        typed = TypedExpression(Apply("gt0", ()), ("1", "1"), ())
        with pytest.raises(EvaluationError):
            Evaluator(square_instance).run_typed(typed)

    def test_apply_overflow_raises_semiring_error(self):
        big = np.array([[2**40, 1], [1, 2**40]], dtype=object)
        instance = Instance.from_matrices({"A": big}, semiring=NATURAL)
        with pytest.raises(SemiringError):
            Evaluator(instance).run(apply("mul", var("A"), var("A")))

    def test_results_are_defensive_copies(self, square_instance, square_matrix):
        result = Evaluator(square_instance).run(var("A"))
        result[0, 0] = -999.0
        assert square_instance.matrix("A")[0, 0] == square_matrix[0, 0]


# ----------------------------------------------------------------------
# The sparse boolean execution backend
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
class TestSparseBackend:
    def _sparse_instance(self, size=24, seed=2):
        adjacency = random_digraph(size, probability=0.08, seed=seed)
        return Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: var("A") @ var("A"),
            lambda: transitive_closure_product("A"),
            lambda: shortest_path_matrix("A"),
            lambda: ssum("_v", var("A") @ var("_v")),
            lambda: trace("A"),
            lambda: diag_via_for(ones(var("A"))),
            lambda: transitive_closure_floyd_warshall("A"),
        ],
        ids=[
            "matmul",
            "closure_product",
            "reflexive_closure",
            "row_sums",
            "trace",
            "diag",
            "floyd_warshall",
        ],
    )
    def test_sparse_agrees_with_dense(self, builder):
        instance = self._sparse_instance()
        expression = builder()
        dense = Evaluator(instance).run(expression)
        sparse = Evaluator(instance, backend="sparse").run(expression)
        assert sparse.dtype == np.bool_
        assert np.array_equal(dense, sparse)

    def test_sparse_backend_rejects_non_boolean_semirings(self):
        with pytest.raises(SemiringError):
            backend_for(REAL, "sparse")

    def test_backend_bound_to_wrong_semiring_is_rejected(self):
        instance = self._sparse_instance()
        real_backend = backend_for(REAL, "dense")
        with pytest.raises(SemiringError):
            Evaluator(instance, backend=real_backend)
        workload = CompiledWorkload(
            trace("A"), instance.schema, backend=real_backend
        )
        with pytest.raises(SemiringError):
            workload.run(instance)

    def test_sparse_backend_instance(self):
        backend = backend_for(BOOLEAN, "sparse")
        assert isinstance(backend, SparseBooleanBackend)

    def test_unknown_backend_name(self):
        with pytest.raises(SemiringError):
            backend_for(BOOLEAN, "no-such-backend")
