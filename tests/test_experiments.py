"""Tests for the experiment harness, registry, workloads and the Figure 1 build."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentRecord,
    Table,
    build_figure1,
    experiment_info,
    render_figure1,
)
from repro.experiments.figure1 import figure1_placements, hierarchy_chain
from repro.experiments.workloads import (
    planted_clique_graph,
    random_digraph,
    random_invertible_matrix,
    random_lu_factorizable_matrix,
    random_pivot_requiring_matrix,
    random_relational_instance,
    random_sum_matlang_expression,
    random_undirected_graph,
    random_weighted_structure,
    reachability_closure,
)
from repro.matlang.fragments import Fragment


class TestHarness:
    def test_table_rendering(self):
        table = Table(columns=("name", "value"), title="demo")
        table.add_row("alpha", 1.5)
        table.add_row("beta", True)
        rendered = table.render()
        assert "demo" in rendered and "alpha" in rendered and "yes" in rendered

    def test_table_row_length_check(self):
        table = Table(columns=("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_column_access(self):
        table = Table(columns=("n", "value"))
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("value") == [10, 20]

    def test_experiment_record_render(self):
        table = Table(columns=("n",))
        table.add_row(3)
        record = ExperimentRecord("E1", "demo claim", table, True)
        assert "PASS" in record.render()

    def test_registry_contains_all_experiments(self):
        identifiers = set(EXPERIMENTS)
        assert {"E1", "E7", "E11", "F1", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8"} <= identifiers
        assert len(identifiers) == 23

    def test_registry_lookup(self):
        info = experiment_info("E5")
        assert "4.1" in info.claim
        with pytest.raises(ReproError):
            experiment_info("E99")

    def test_bench_targets_exist_on_disk(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for info in EXPERIMENTS.values():
            assert (root / info.bench_target).exists(), info.bench_target


class TestWorkloads:
    def test_seeded_generators_are_deterministic(self):
        assert np.allclose(random_invertible_matrix(4, 7), random_invertible_matrix(4, 7))
        assert np.allclose(random_digraph(5, 0.4, 3), random_digraph(5, 0.4, 3))

    def test_invertible_matrices_are_invertible(self):
        for seed in range(3):
            matrix = random_invertible_matrix(5, seed)
            assert abs(np.linalg.det(matrix)) > 1e-6

    def test_lu_factorizable_matrices_have_nonzero_leading_minors(self):
        matrix = random_lu_factorizable_matrix(5, 2)
        for k in range(1, 6):
            assert abs(np.linalg.det(matrix[:k, :k])) > 1e-9

    def test_pivot_requiring_matrix(self):
        matrix = random_pivot_requiring_matrix(4, 1)
        assert matrix[0, 0] == 0.0
        assert abs(np.linalg.det(matrix)) > 1e-9

    def test_graphs_have_no_self_loops(self):
        assert np.trace(random_digraph(6, 0.5, 0)) == 0.0
        assert np.trace(random_undirected_graph(6, 0.5, 0)) == 0.0

    def test_planted_clique_is_present(self):
        adjacency, vertices = planted_clique_graph(8, 4, 0.05, 0)
        for i in vertices:
            for j in vertices:
                if i != j:
                    assert adjacency[i, j] == 1.0

    def test_reachability_closure_on_path(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 2] = 1
        closure = reachability_closure(adjacency)
        assert closure[0, 2] == 1.0 and closure[2, 0] == 0.0

    def test_random_relational_instance_is_binary(self):
        instance = random_relational_instance(3, 0)
        assert instance.schema.is_binary_schema()

    def test_random_weighted_structure_arity(self):
        structure = random_weighted_structure(3, 0)
        assert structure.arity("E") == 2 and structure.arity("P") == 1

    def test_random_sum_matlang_expression_stays_in_fragment(self):
        from repro.matlang.fragments import minimal_fragment

        for seed in range(5):
            expression = random_sum_matlang_expression(seed, depth=3)
            assert Fragment.SUM_MATLANG.includes(minimal_fragment(expression))


class TestFigure1:
    def test_placements_are_consistent(self):
        table, consistent = build_figure1()
        assert consistent
        assert len(table.rows) == len(figure1_placements())

    def test_hierarchy_chain_is_increasing(self):
        chain = hierarchy_chain()
        assert list(chain) == sorted(chain)

    def test_render_mentions_equivalences(self):
        text = render_figure1()
        assert "RA+_K" in text and "WL" in text and "circuits" in text

    def test_placements_cover_the_figure_queries(self):
        names = {placement.query for placement in figure1_placements()}
        assert {"4-clique", "diagonal product (DP)", "inverse", "determinant", "PLU decomposition"} <= names
