"""Integration tests exercising several subsystems together.

These tests follow the paper's storyline end to end: an expression is written
once and then evaluated directly, through the arithmetic-circuit compiler,
through the RA+_K translation and through weighted logic, and all answers must
agree.  They are the executable form of the "equivalence" arrows of Figure 1.
"""

import numpy as np

from repro.circuits import compile_expression
from repro.kalgebra.matlang_to_ra import evaluate_via_relational
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.matlang.parser import parse
from repro.matlang.printer import to_text
from repro.matlang.schema import Schema
from repro.semiring import BOOLEAN, NATURAL
from repro.stdlib import (
    csanky_determinant,
    csanky_inverse,
    four_clique_count,
    lu_lower,
    lu_upper,
    trace,
    transitive_closure_indicator,
)
from repro.wlogic import (
    evaluate_formula,
    structure_from_instance,
    translate_fo_matlang,
)
from repro.experiments.workloads import (
    planted_clique_graph,
    random_digraph,
    random_invertible_matrix,
    random_lu_factorizable_matrix,
    reachability_closure,
)


class TestFourWayAgreement:
    """One expression, four evaluation routes (Figure 1's equivalences)."""

    def test_trace_agrees_everywhere(self, rng):
        matrix = rng.integers(0, 4, size=(4, 4)).astype(float)
        instance = Instance.from_matrices({"A": matrix})
        expression = trace("A")

        direct = evaluate(expression, instance)[0, 0]
        circuit_value = compile_expression(
            expression, Schema({"A": ("alpha", "alpha")}), 4
        ).evaluate({"A": matrix})[0, 0]
        relational_value = evaluate_via_relational(expression, instance)[0, 0]
        formula = translate_fo_matlang(expression, instance.schema)
        logical_value = evaluate_formula(formula, structure_from_instance(instance))

        assert np.isclose(direct, np.trace(matrix))
        assert np.isclose(direct, circuit_value)
        assert np.isclose(direct, relational_value)
        assert np.isclose(direct, logical_value)

    def test_four_clique_agrees_everywhere(self):
        adjacency, _ = planted_clique_graph(6, 4, probability=0.1, seed=2)
        instance = Instance.from_matrices({"A": adjacency})
        expression = four_clique_count("A")

        direct = evaluate(expression, instance)[0, 0]
        circuit_value = compile_expression(
            expression, Schema({"A": ("alpha", "alpha")}), 6
        ).evaluate({"A": adjacency})[0, 0]
        relational_value = evaluate_via_relational(expression, instance)[0, 0]

        assert direct > 0
        assert np.isclose(direct, circuit_value)
        assert np.isclose(direct, relational_value)


class TestLinearAlgebraPipeline:
    def test_lu_factors_solve_linear_systems(self, rng):
        matrix = random_lu_factorizable_matrix(4, seed=17)
        instance = Instance.from_matrices({"A": matrix})
        lower = np.asarray(evaluate(lu_lower("A"), instance), float)
        upper = np.asarray(evaluate(lu_upper("A"), instance), float)
        rhs = rng.uniform(-1, 1, size=4)
        solution = np.linalg.solve(upper, np.linalg.solve(lower, rhs))
        assert np.allclose(matrix @ solution, rhs, atol=1e-8)

    def test_determinant_and_inverse_are_consistent(self):
        matrix = random_invertible_matrix(3, seed=23)
        instance = Instance.from_matrices({"A": matrix})
        determinant = evaluate(csanky_determinant("A"), instance)[0, 0]
        inverse = np.asarray(evaluate(csanky_inverse("A"), instance), float)
        assert np.isclose(determinant * np.linalg.det(inverse), 1.0, rtol=1e-6)

    def test_inverse_reproduces_transitive_closure_claim(self):
        """Non-zero pattern of (I - A/n)^{-1} contains the reflexive closure."""
        adjacency = random_digraph(5, probability=0.3, seed=31)
        scaled = np.eye(5) - adjacency / 5.0
        instance = Instance.from_matrices({"A": scaled})
        inverse = np.asarray(evaluate(csanky_inverse("A"), instance), float)
        closure = reachability_closure(adjacency) + np.eye(5)
        assert np.all((np.abs(inverse) > 1e-9) == (closure > 0))


class TestSemiringsAcrossTheStack:
    def test_boolean_closure_equals_real_indicator(self):
        adjacency = random_digraph(5, probability=0.35, seed=5)
        real_instance = Instance.from_matrices({"A": adjacency})
        boolean_instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        from repro.stdlib import transitive_closure_floyd_warshall

        indicator = np.asarray(
            evaluate(transitive_closure_indicator("A"), real_instance), float
        )
        boolean = evaluate(transitive_closure_floyd_warshall("A"), boolean_instance)
        assert all(
            bool(boolean[i, j]) == bool(indicator[i, j]) for i in range(5) for j in range(5)
        )

    def test_natural_semiring_counts_paths(self):
        adjacency = np.array([[0, 1, 1], [0, 0, 1], [0, 0, 0]])
        instance = Instance.from_matrices({"A": adjacency}, semiring=NATURAL)
        two_paths = evaluate(parse("A * A"), instance)
        assert two_paths[0, 2] == 1


class TestTextualWorkflow:
    def test_parse_evaluate_print_cycle(self, square_instance):
        source = "sum v . v' * A * v"
        expression = parse(source)
        value = evaluate(expression, square_instance)[0, 0]
        assert np.isclose(value, np.trace(np.asarray(square_instance.matrix("A"), float)))
        assert parse(to_text(expression)) == expression

    def test_stdlib_expressions_round_trip_through_text(self, square_instance):
        for expression in (trace("A"), four_clique_count("A")):
            reparsed = parse(to_text(expression))
            assert np.allclose(
                np.asarray(evaluate(expression, square_instance), float),
                np.asarray(evaluate(reparsed, square_instance), float),
            )
