"""Tests for K-relations, the RA+_K query language and its evaluator (Section 6.1)."""

import pytest

from repro.exceptions import SchemaError
from repro.kalgebra import (
    Join,
    KRelation,
    Project,
    RelationRef,
    RelationalInstance,
    RelationalSchema,
    Rename,
    Select,
    Union,
    evaluate_query,
    query_schema,
)
from repro.semiring import BOOLEAN, NATURAL
from repro.semiring.provenance import PROVENANCE


def small_instance(semiring=NATURAL) -> RelationalInstance:
    schema = RelationalSchema({"R": ("a", "b"), "S": ("b", "c")})
    r = KRelation(("a", "b"), semiring)
    s = KRelation(("b", "c"), semiring)
    r.set({"a": 1, "b": 2}, 2)
    r.set({"a": 2, "b": 3}, 1)
    r.set({"a": 1, "b": 1}, 3)
    s.set({"b": 2, "c": 3}, 5)
    s.set({"b": 3, "c": 1}, 1)
    return RelationalInstance(schema, {"R": r, "S": s})


class TestKRelation:
    def test_set_and_lookup(self):
        relation = KRelation(("a",), NATURAL)
        relation.set({"a": 1}, 3)
        assert relation.annotation({"a": 1}) == 3
        assert relation.annotation({"a": 2}) == 0

    def test_zero_annotations_are_dropped(self):
        relation = KRelation(("a",), NATURAL)
        relation.set({"a": 1}, 0)
        assert relation.support_size() == 0

    def test_add_accumulates(self):
        relation = KRelation(("a",), NATURAL)
        relation.add({"a": 1}, 2)
        relation.add({"a": 1}, 3)
        assert relation.annotation({"a": 1}) == 5

    def test_wrong_signature_raises(self):
        relation = KRelation(("a",), NATURAL)
        with pytest.raises(SchemaError):
            relation.set({"b": 1}, 1)

    def test_active_domain(self):
        relation = KRelation(("a", "b"), NATURAL)
        relation.set({"a": 3, "b": 1}, 1)
        assert relation.active_domain() == (1, 3)

    def test_equality(self):
        left = KRelation(("a",), NATURAL, {(("a", 1),): 2})
        right = KRelation(("a",), NATURAL)
        right.set({"a": 1}, 2)
        assert left.equals(right)
        right.set({"a": 2}, 1)
        assert not left.equals(right)

    def test_instance_checks_signatures(self):
        schema = RelationalSchema({"R": ("a", "b")})
        bad = KRelation(("a",), NATURAL)
        with pytest.raises(SchemaError):
            RelationalInstance(schema, {"R": bad})


class TestQuerySchema:
    def test_base_and_join(self):
        schema = RelationalSchema({"R": ("a", "b"), "S": ("b", "c")})
        assert query_schema(RelationRef("R"), schema) == frozenset({"a", "b"})
        assert query_schema(Join(RelationRef("R"), RelationRef("S")), schema) == frozenset(
            {"a", "b", "c"}
        )

    def test_union_requires_matching_signatures(self):
        schema = RelationalSchema({"R": ("a", "b"), "S": ("b", "c")})
        with pytest.raises(SchemaError):
            query_schema(Union(RelationRef("R"), RelationRef("S")), schema)

    def test_projection_must_be_contained(self):
        schema = RelationalSchema({"R": ("a", "b")})
        with pytest.raises(SchemaError):
            query_schema(Project(("c",), RelationRef("R")), schema)

    def test_rename_must_cover_signature(self):
        schema = RelationalSchema({"R": ("a", "b")})
        with pytest.raises(SchemaError):
            query_schema(Rename({"x": "a"}, RelationRef("R")), schema)

    def test_rename_valid(self):
        schema = RelationalSchema({"R": ("a", "b")})
        renamed = Rename({"x": "a", "y": "b"}, RelationRef("R"))
        assert query_schema(renamed, schema) == frozenset({"x", "y"})

    def test_binary_schema_check(self):
        assert RelationalSchema({"R": ("a", "b")}).is_binary_schema()
        assert not RelationalSchema({"T": ("a", "b", "c")}).is_binary_schema()


class TestEvaluation:
    def test_base_relation_copy(self):
        instance = small_instance()
        result = evaluate_query(RelationRef("R"), instance)
        assert result.annotation({"a": 1, "b": 2}) == 2

    def test_union_adds_annotations(self):
        instance = small_instance()
        doubled = evaluate_query(Union(RelationRef("R"), RelationRef("R")), instance)
        assert doubled.annotation({"a": 1, "b": 2}) == 4

    def test_join_multiplies_annotations(self):
        instance = small_instance()
        joined = evaluate_query(Join(RelationRef("R"), RelationRef("S")), instance)
        assert joined.annotation({"a": 1, "b": 2, "c": 3}) == 10
        assert joined.annotation({"a": 2, "b": 3, "c": 1}) == 1
        assert joined.support_size() == 2

    def test_projection_sums_annotations(self):
        instance = small_instance()
        projected = evaluate_query(Project(("a",), RelationRef("R")), instance)
        assert projected.annotation({"a": 1}) == 5

    def test_selection_keeps_equal_tuples(self):
        instance = small_instance()
        selected = evaluate_query(Select(("a", "b"), RelationRef("R")), instance)
        assert selected.annotation({"a": 1, "b": 1}) == 3
        assert selected.support_size() == 1

    def test_rename(self):
        instance = small_instance()
        renamed = evaluate_query(Rename({"x": "a", "y": "b"}, RelationRef("R")), instance)
        assert renamed.annotation({"x": 1, "y": 2}) == 2

    def test_join_project_pipeline(self):
        instance = small_instance()
        query = Project(("a", "c"), Join(RelationRef("R"), RelationRef("S")))
        result = evaluate_query(query, instance)
        assert result.annotation({"a": 1, "c": 3}) == 10

    def test_boolean_semantics_is_set_semantics(self):
        instance = small_instance(BOOLEAN)
        query = Project(("a",), RelationRef("R"))
        result = evaluate_query(query, instance)
        assert result.annotation({"a": 1}) is True

    def test_provenance_annotations_compose(self):
        schema = RelationalSchema({"R": ("a", "b"), "S": ("b", "c")})
        r = KRelation(("a", "b"), PROVENANCE)
        s = KRelation(("b", "c"), PROVENANCE)
        r.set({"a": 1, "b": 2}, "p")
        s.set({"b": 2, "c": 3}, "q")
        instance = RelationalInstance(schema, {"R": r, "S": s})
        query = Project(("a", "c"), Join(RelationRef("R"), RelationRef("S")))
        result = evaluate_query(query, instance)
        assert str(result.annotation({"a": 1, "c": 3})) == "p*q"

    def test_empty_instance_rejected(self):
        schema = RelationalSchema({"R": ("a",)})
        with pytest.raises(SchemaError):
            evaluate_query(RelationRef("R"), RelationalInstance(schema, {}))
