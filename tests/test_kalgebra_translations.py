"""Tests for Propositions 6.3 and 6.4: sum-MATLANG <-> RA+_K."""

import numpy as np
import pytest

from repro.exceptions import FragmentError
from repro.kalgebra import (
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
    evaluate_query,
    translate_query,
    translate_sum_matlang,
)
from repro.kalgebra.matlang_to_ra import evaluate_via_relational
from repro.kalgebra.ra_to_matlang import evaluate_query_via_matlang
from repro.kalgebra.relations import RelationalSchema
from repro.matlang.ast import Diag, OneVector
from repro.matlang.builder import apply, forloop, lit, ssum, var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import BOOLEAN, NATURAL
from repro.stdlib import four_clique_count, trace
from repro.experiments.workloads import (
    random_integer_matrix,
    random_ra_query,
    random_relational_instance,
    random_sum_matlang_expression,
)


def both_ways_match(expression, instance) -> bool:
    direct = np.asarray(evaluate(expression, instance), dtype=float)
    via = np.asarray(evaluate_via_relational(expression, instance), dtype=float)
    return np.allclose(direct, via)


class TestSumMatlangToRA:
    def test_matrix_variable(self, square_instance):
        assert both_ways_match(var("A"), square_instance)

    def test_core_operators(self, square_instance):
        for expression in (
            var("A") + var("A"),
            var("A") @ var("A"),
            var("A").T,
            lit(2) * var("A"),
            OneVector(var("A")),
            Diag(OneVector(var("A"))),
            apply("mul", var("A"), var("A")),
        ):
            assert both_ways_match(expression, square_instance), expression

    def test_trace_and_clique(self, square_instance):
        assert both_ways_match(trace("A"), square_instance)
        adjacency = np.ones((4, 4)) - np.eye(4)
        graph_instance = Instance.from_matrices({"A": adjacency})
        assert both_ways_match(four_clique_count("A"), graph_instance)

    def test_vector_expressions(self):
        instance = Instance.from_matrices({"A": np.arange(9.0).reshape(3, 3), "u": [1.0, 2.0, 3.0]})
        for expression in (var("A") @ var("u"), var("u").T @ var("A"), var("u").T @ var("u")):
            assert both_ways_match(expression, instance)

    def test_sum_quantifier_forms(self, square_instance):
        v = var("v")
        expressions = [
            ssum("v", v @ v.T),
            ssum("v", (v.T @ var("A") @ v) * (v @ v.T)),
            ssum("u", ssum("v", (var("u").T @ var("A") @ var("v")) * (var("u") @ var("v").T))),
        ]
        for expression in expressions:
            assert both_ways_match(expression, square_instance), expression

    def test_sum_over_unused_iterator_multiplies_by_n(self, square_instance):
        expression = ssum("v", var("A"))
        assert both_ways_match(expression, square_instance)

    def test_other_semirings(self):
        matrix = random_integer_matrix(3, seed=1)
        for semiring in (NATURAL, BOOLEAN):
            instance = Instance.from_matrices({"A": matrix}, semiring=semiring)
            direct = evaluate(var("A") @ var("A"), instance)
            via = evaluate_via_relational(var("A") @ var("A"), instance)
            assert all(
                semiring.close_to(direct[i, j], via[i, j]) for i in range(3) for j in range(3)
            )

    def test_for_loop_is_rejected(self, square_instance):
        with pytest.raises(FragmentError):
            translate_sum_matlang(
                forloop("v", "X", var("X") + var("A")), square_instance.schema
            )

    def test_unsupported_function_is_rejected(self, square_instance):
        with pytest.raises(FragmentError):
            translate_sum_matlang(apply("gt0", var("A")), square_instance.schema)

    def test_translation_exposes_constants(self, square_instance):
        translation = translate_sum_matlang(lit(2) * var("A"), square_instance.schema)
        assert 2.0 in translation.constants.values()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_expressions(self, seed):
        expression = random_sum_matlang_expression(seed, depth=3)
        instance = Instance.from_matrices(
            {"A": random_integer_matrix(3, seed), "B": random_integer_matrix(3, seed + 100)}
        )
        assert both_ways_match(expression, instance)


class TestRAToSumMatlang:
    def make_instance(self, seed=0, semiring=NATURAL):
        return random_relational_instance(domain_size=3, seed=seed, semiring=semiring)

    def check(self, query, instance) -> bool:
        direct = evaluate_query(query, instance)
        via = evaluate_query_via_matlang(query, instance)
        return direct.equals(via)

    def test_base_relations(self):
        instance = self.make_instance()
        assert self.check(RelationRef("R"), instance)
        assert self.check(RelationRef("P"), instance)

    def test_join_project(self):
        instance = self.make_instance(1)
        query = Project(("a", "c"), Join(RelationRef("R"), RelationRef("S")))
        assert self.check(query, instance)

    def test_union_with_rename(self):
        instance = self.make_instance(2)
        query = Union(RelationRef("R"), Rename({"a": "b", "b": "c"}, RelationRef("S")))
        assert self.check(query, instance)

    def test_selection(self):
        instance = self.make_instance(3)
        query = Project(("a",), Select(("a", "b"), RelationRef("R")))
        assert self.check(query, instance)

    def test_unary_output(self):
        instance = self.make_instance(4)
        query = Project(("a",), Join(RelationRef("R"), RelationRef("P")))
        assert self.check(query, instance)

    def test_nullary_output(self):
        instance = self.make_instance(5)
        query = Project((), RelationRef("P"))
        assert self.check(query, instance)

    def test_translated_expression_is_sum_matlang(self):
        from repro.matlang.fragments import Fragment, minimal_fragment

        schema = RelationalSchema({"R": ("a", "b"), "S": ("b", "c"), "P": ("a",)})
        query = Project(("a", "c"), Join(RelationRef("R"), RelationRef("S")))
        expression = translate_query(query, schema)
        assert minimal_fragment(expression) == Fragment.SUM_MATLANG

    def test_ternary_output_rejected(self):
        schema = RelationalSchema({"R": ("a", "b"), "S": ("b", "c"), "P": ("a",)})
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            translate_query(Join(RelationRef("R"), RelationRef("S")), schema)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_queries(self, seed):
        instance = self.make_instance(seed)
        query = random_ra_query(instance.schema, seed=seed, depth=3)
        assert self.check(query, instance)

    def test_boolean_semiring_roundtrip(self):
        instance = self.make_instance(7, semiring=BOOLEAN)
        query = Project(("a", "c"), Join(RelationRef("R"), RelationRef("S")))
        assert self.check(query, instance)
