"""Unit tests for the MATLANG expression AST."""

import pytest

from repro.matlang.ast import (
    Add,
    Apply,
    HadamardLoop,
    Literal,
    MatMul,
    ProductLoop,
    ScalarMul,
    SumLoop,
    Transpose,
    Var,
)
from repro.matlang.builder import forloop, lit, ssum, var


class TestConstruction:
    def test_operator_sugar_builds_expected_nodes(self):
        a, b = var("A"), var("B")
        assert isinstance(a + b, Add)
        assert isinstance(a @ b, MatMul)
        assert isinstance(lit(2) * a, ScalarMul)
        assert isinstance(a.T, Transpose)

    def test_numbers_coerce_to_literals(self):
        expression = var("A") + 1
        assert isinstance(expression.right, Literal)
        assert expression.right.value == 1.0

    def test_invalid_operand_raises(self):
        with pytest.raises(TypeError):
            var("A") + "nonsense"

    def test_apply_normalises_operands_to_tuple(self):
        node = Apply("mul", [var("A"), var("B")])
        assert isinstance(node.operands, tuple)

    def test_structural_equality_and_hash(self):
        first = ssum("v", var("v").T @ var("A") @ var("v"))
        second = ssum("v", var("v").T @ var("A") @ var("v"))
        assert first == second
        assert hash(first) == hash(second)

    def test_different_quantifiers_are_not_equal(self):
        body = var("v").T @ var("A") @ var("v")
        assert SumLoop("v", body) != HadamardLoop("v", body)
        assert SumLoop("v", body) != ProductLoop("v", body)


class TestVariables:
    def test_free_variables_of_plain_expression(self):
        expression = var("A") @ var("B") + var("A")
        assert expression.free_variables() == ("A", "B")

    def test_loop_binds_iterator_and_accumulator(self):
        loop = forloop("v", "X", var("X") + var("v") @ var("A"))
        assert loop.free_variables() == ("A",)
        assert set(loop.bound_variables()) == {"v", "X"}

    def test_init_is_outside_the_binder(self):
        loop = forloop("v", "X", var("X") + var("v"), init=var("X"))
        assert "X" in loop.free_variables()

    def test_quantifier_binds_only_iterator(self):
        expression = ssum("v", var("v").T @ var("A") @ var("v"))
        assert expression.free_variables() == ("A",)
        assert expression.bound_variables() == ("v",)

    def test_size_counts_nodes(self):
        assert var("A").size() == 1
        assert (var("A") + var("B")).size() == 3


class TestSubstitution:
    def test_substitute_free_variable(self):
        expression = var("X") + var("A")
        replaced = expression.substitute("X", var("B"))
        assert replaced == var("B") + var("A")

    def test_substitution_stops_at_binders(self):
        loop = forloop("v", "X", var("X") + var("v"))
        assert loop.substitute("X", var("B")) == loop

    def test_substitution_inside_init(self):
        loop = forloop("v", "X", var("X") + var("v"), init=var("Y"))
        replaced = loop.substitute("Y", var("A"))
        assert replaced.init == var("A")

    def test_substitution_mirrors_paper_initialisation_trick(self):
        """Section 3.2: e(v, X / e0) replaces X by the initialiser everywhere."""
        body = var("X") @ var("A") + var("v")
        replaced = body.substitute("X", var("A"))
        assert replaced == var("A") @ var("A") + var("v")

    def test_walk_visits_all_nodes(self):
        expression = ssum("v", var("v").T @ var("A") @ var("v"))
        kinds = {type(node).__name__ for node in expression.walk()}
        assert {"SumLoop", "Transpose", "MatMul", "Var"} <= kinds
