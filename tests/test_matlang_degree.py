"""Unit tests for degree analysis (Propositions 5.5 / 6.1)."""


from repro.matlang.builder import apply, forloop, lit, prod, ssum, var
from repro.matlang.degree import (
    analyse_degree,
    circuit_degree_for_dimension,
    is_certified_polynomial_degree,
)
from repro.matlang.schema import Schema
from repro.stdlib import diagonal_product, four_clique_count, trace, transitive_closure_floyd_warshall

SCHEMA = Schema({"A": ("alpha", "alpha")})


class TestSyntacticAnalysis:
    def test_matlang_core_is_polynomial(self):
        assert is_certified_polynomial_degree(var("A") @ var("A") + var("A"))

    def test_sum_matlang_is_polynomial_proposition_61(self):
        for expression in (trace("A"), four_clique_count("A")):
            report = analyse_degree(expression)
            assert report.certified_polynomial, report.explain()

    def test_fo_and_prod_quantifiers_are_polynomial(self):
        assert is_certified_polynomial_degree(diagonal_product("A"))
        assert is_certified_polynomial_degree(prod("v", var("A")))

    def test_linear_accumulator_loops_are_polynomial(self):
        loop = forloop("v", "X", var("X") @ var("A") + var("A"), init=var("A"))
        assert is_certified_polynomial_degree(loop)

    def test_floyd_warshall_is_not_certified(self):
        """The analysis is conservative: the Floyd-Warshall body multiplies the
        accumulator with itself, so its certificate is (correctly) withheld even
        though the reachability information it encodes is simple."""
        report = analyse_degree(transitive_closure_floyd_warshall("A"))
        assert not report.certified_polynomial

    def test_exp_example_is_flagged(self):
        """Section 5.2: e_exp = for v, X = A. X . X computes a^(2^n)."""
        e_exp = forloop("v", "X", var("X") @ var("X"), init=var("A"))
        report = analyse_degree(e_exp)
        assert not report.certified_polynomial
        assert any(not loop.is_polynomial for loop in report.loops)
        assert "multiplies the degree" in report.explain()

    def test_division_of_accumulator_is_opaque(self):
        loop = forloop("v", "X", apply("div", var("X"), var("A")))
        report = analyse_degree(loop)
        assert not report.certified_polynomial
        assert "div" in report.opaque_functions

    def test_division_of_inputs_only_is_fine(self):
        expression = ssum("v", apply("div", var("v").T @ var("A") @ var("v"), lit(2)))
        assert is_certified_polynomial_degree(expression)

    def test_explain_mentions_base_degree_when_polynomial(self):
        assert "degree" in analyse_degree(trace("A")).explain()


class TestExactDegreeViaCircuits:
    def test_trace_has_degree_one(self):
        assert circuit_degree_for_dimension(trace("A"), SCHEMA, 3) == 1

    def test_quadratic_expression(self):
        expression = ssum("v", var("v").T @ var("A") @ var("A") @ var("v"))
        assert circuit_degree_for_dimension(expression, SCHEMA, 3) == 2

    def test_diagonal_product_degree_grows_linearly(self):
        degrees = [
            circuit_degree_for_dimension(diagonal_product("A"), SCHEMA, n) for n in (2, 3, 4)
        ]
        assert degrees == [2, 3, 4]

    def test_exp_example_degree_grows_exponentially(self):
        e_exp = forloop("v", "X", var("X") @ var("X"), init=var("A"))
        schema = Schema({"A": ("1", "1"), "v": ("alpha", "1")})
        degrees = [circuit_degree_for_dimension(e_exp, schema, n) for n in (1, 2, 3, 4)]
        assert degrees == [2, 4, 8, 16]

    def test_matrix_output_degree_sums_over_outputs(self):
        # A . A at dimension 2: each of the 4 output entries has degree 2.
        degree = circuit_degree_for_dimension(var("A") @ var("A"), SCHEMA, 2)
        assert degree == 8
