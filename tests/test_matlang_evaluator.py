"""Unit tests for the MATLANG / for-MATLANG evaluator (Sections 2, 3.1, 6)."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.matlang.ast import Diag, OneVector
from repro.matlang.builder import apply, forloop, had, hint, lit, ones, prod, ssum, var
from repro.matlang.evaluator import Evaluator, evaluate
from repro.matlang.instance import Instance
from repro.matlang.schema import Schema
from repro.semiring import BOOLEAN, MIN_PLUS, NATURAL
from repro.semiring.provenance import PROVENANCE, Polynomial


def as_float(matrix) -> np.ndarray:
    return np.asarray(matrix, dtype=np.float64)


class TestCoreOperators:
    def test_variable_lookup(self, square_instance, square_matrix):
        assert np.allclose(evaluate(var("A"), square_instance), square_matrix)

    def test_transpose(self, square_instance, square_matrix):
        assert np.allclose(evaluate(var("A").T, square_instance), square_matrix.T)

    def test_ones_vector(self, square_instance):
        assert np.allclose(evaluate(ones(var("A")), square_instance), np.ones((4, 1)))

    def test_diag(self, square_instance):
        result = evaluate(Diag(OneVector(var("A"))), square_instance)
        assert np.allclose(result, np.eye(4))

    def test_diag_rejects_matrices_at_runtime(self):
        schema = Schema({"A": ("alpha", "1")})
        instance = Instance(schema, {"alpha": 2}, {"A": [1.0, 2.0]})
        assert np.allclose(evaluate(Diag(var("A")), instance), np.diag([1.0, 2.0]))

    def test_matmul_addition_scalarmul(self, square_instance, square_matrix):
        expression = lit(2) * (var("A") @ var("A") + var("A"))
        expected = 2 * (square_matrix @ square_matrix + square_matrix)
        assert np.allclose(evaluate(expression, square_instance), expected)

    def test_literal(self, square_instance):
        assert evaluate(lit(3.5), square_instance)[0, 0] == 3.5

    def test_scalar_multiplication_requires_1x1(self, square_instance):
        schema = square_instance.schema.with_variable("B", ("alpha", "alpha"))
        instance = Instance(
            schema,
            dict(square_instance.dimensions),
            {**square_instance.matrices, "B": np.eye(4)},
        )
        # (A x B) is ill-typed, so the error surfaces at typing time already.
        from repro.exceptions import TypingError

        with pytest.raises(TypingError):
            evaluate(var("A") * var("B"), instance)

    def test_pointwise_application(self, square_instance, square_matrix):
        result = evaluate(apply("mul", var("A"), var("A")), square_instance)
        assert np.allclose(result, square_matrix * square_matrix)

    def test_pointwise_division(self, square_instance, square_matrix):
        result = evaluate(apply("div", var("A"), var("A")), square_instance)
        expected = np.where(square_matrix != 0, 1.0, 0.0)
        assert np.allclose(result, expected)


class TestForLoops:
    def test_ones_via_for_loop_example_31(self, square_instance):
        loop = hint(forloop("v", "X", var("X") + var("v")), "alpha", "1")
        assert np.allclose(evaluate(loop, square_instance), np.ones((4, 1)))

    def test_diag_via_for_loop_example_32(self):
        instance = Instance.from_matrices({"u": [3.0, 1.0, 2.0], "A": np.eye(3)})
        v = var("_v")
        loop = forloop("_v", "_X", var("_X") + (v.T @ var("u")) * (v @ v.T))
        assert np.allclose(evaluate(loop, instance), np.diag([3.0, 1.0, 2.0]))

    def test_last_canonical_vector(self, square_instance):
        loop = hint(forloop("v", "X", var("v")), "alpha", "1")
        assert np.allclose(as_float(evaluate(loop, square_instance)).ravel(), [0, 0, 0, 1])

    def test_initialised_loop(self, square_instance, square_matrix):
        loop = forloop("v", "X", var("X") @ var("A"), init=var("A"))
        assert np.allclose(
            evaluate(loop, square_instance), np.linalg.matrix_power(square_matrix, 5)
        )

    def test_initialisation_desugaring_matches_paper(self, square_instance, square_matrix):
        """Section 3.2: ``for v, X = e0. e`` equals the min(v)-guarded rewrite."""
        from repro.stdlib.order import is_min

        body = var("X") @ var("A")
        with_init = forloop("v", "X", body, init=var("A"))
        guard = is_min(var("v"))
        rewritten = forloop(
            "v",
            "X",
            guard * body.substitute("X", var("A")) + (lit(1) + lit(-1) * guard) * body,
        )
        assert np.allclose(
            evaluate(with_init, square_instance), evaluate(rewritten, square_instance)
        )

    def test_nested_loops_with_shadowing(self, square_instance):
        inner = forloop("v", "X", var("X") + var("v") @ var("v").T)
        outer = forloop("v", "Y", var("Y") + inner)
        result = evaluate(outer, square_instance)
        assert np.allclose(result, 4 * np.eye(4))

    def test_unconstrained_iterator_raises(self):
        schema = Schema({"A": ("alpha", "alpha"), "B": ("beta", "beta")})
        instance = Instance(schema, {"alpha": 2, "beta": 3}, {"A": np.eye(2), "B": np.eye(3)})
        with pytest.raises(EvaluationError):
            evaluate(forloop("v", "X", var("v")), instance)

    def test_memoization_returns_same_values(self, square_instance):
        from repro.stdlib.order import s_less_equal

        cached = Evaluator(square_instance, memoize=True).run(s_less_equal())
        uncached = Evaluator(square_instance, memoize=False).run(s_less_equal())
        assert np.allclose(cached, uncached)


class TestQuantifiers:
    def test_sum_quantifier_trace(self, square_instance, square_matrix):
        expression = ssum("v", var("v").T @ var("A") @ var("v"))
        assert np.isclose(evaluate(expression, square_instance)[0, 0], np.trace(square_matrix))

    def test_product_quantifier_matrix_power(self, square_instance, square_matrix):
        expression = prod("v", var("A"))
        assert np.allclose(
            evaluate(expression, square_instance), np.linalg.matrix_power(square_matrix, 4)
        )

    def test_hadamard_quantifier(self, square_instance, square_matrix):
        expression = had("v", var("A"))
        assert np.allclose(evaluate(expression, square_instance), square_matrix**4)

    def test_sum_equals_for_loop_desugaring(self, square_instance):
        body = var("v") @ var("v").T @ var("A")
        sugar = ssum("v", body)
        desugared = forloop("v", "X", var("X") + body)
        assert np.allclose(
            evaluate(sugar, square_instance), evaluate(desugared, square_instance)
        )


class TestOtherSemirings:
    def test_boolean_reachability(self):
        adjacency = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]])
        instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        two_step = evaluate(var("A") @ var("A"), instance)
        assert bool(two_step[0, 2]) is True
        assert bool(two_step[0, 1]) is False

    def test_natural_counting(self):
        adjacency = np.array([[0, 2], [1, 0]])
        instance = Instance.from_matrices({"A": adjacency}, semiring=NATURAL)
        result = evaluate(var("A") @ var("A"), instance)
        assert result[0, 0] == 2

    def test_min_plus_shortest_paths(self):
        import math

        inf = math.inf
        weights = np.array([[inf, 1.0, 5.0], [inf, inf, 2.0], [inf, inf, inf]], dtype=object)
        instance = Instance.from_matrices({"A": weights}, semiring=MIN_PLUS)
        result = evaluate(var("A") @ var("A"), instance)
        assert result[0, 2] == 3.0

    def test_provenance_tracking(self):
        p = Polynomial.variable
        matrix = np.array([[p("a"), p("b")], [p("c"), p("d")]], dtype=object)
        instance = Instance.from_matrices({"A": matrix}, semiring=PROVENANCE)
        trace = evaluate(ssum("v", var("v").T @ var("A") @ var("v")), instance)
        assert str(trace[0, 0]) == "a + d"

    def test_pointwise_functions_accept_numpy_scalars(self):
        # Regression: primitive-dtype matrices hand np.bool_/np.int64 entries
        # to pointwise functions; gt0 and friends used to reject them.
        adjacency = np.array([[0, 1], [0, 0]])
        boolean = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        gated = evaluate(apply("gt0", var("A")), boolean)
        assert bool(gated[0, 1]) is True and bool(gated[0, 0]) is False

        natural = Instance.from_matrices({"A": adjacency}, semiring=NATURAL)
        gated = evaluate(apply("gt0", var("A")), natural)
        assert gated[0, 1] == 1 and gated[0, 0] == 0

    def test_transitive_closure_stdlib_works_over_boolean_and_natural(self):
        from repro.stdlib import transitive_closure_indicator, transitive_closure_product

        adjacency = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]])
        for semiring in (BOOLEAN, NATURAL):
            instance = Instance.from_matrices({"A": adjacency}, semiring=semiring)
            closure = evaluate(transitive_closure_indicator(var("A")), instance)
            assert bool(closure[0, 2]) and not bool(closure[2, 0])
            reflexive = evaluate(transitive_closure_product(var("A")), instance)
            assert bool(reflexive[0, 0]) and bool(reflexive[0, 2])

    def test_sum_quantifier_over_boolean_is_exists(self):
        adjacency = np.array([[0, 1], [0, 0]])
        instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        has_edge = evaluate(ssum("u", ssum("v", var("u").T @ var("A") @ var("v"))), instance)
        assert bool(has_edge[0, 0]) is True


class TestResultAliasing:
    """Results handed out by the public API must be defensive copies."""

    def test_mutating_a_variable_result_does_not_corrupt_the_instance(
        self, square_instance, square_matrix
    ):
        # Regression: evaluate(var("A"), ...) used to return the instance's
        # backing array itself.
        result = evaluate(var("A"), square_instance)
        result[0, 0] = -999.0
        assert square_instance.matrix("A")[0, 0] == square_matrix[0, 0]
        fresh = evaluate(var("A"), square_instance)
        assert np.allclose(fresh, square_matrix)

    def test_mutating_a_result_does_not_corrupt_later_runs(self, square_instance):
        # Regression: memoized loop results were returned without copying, so
        # a caller mutation poisoned every later evaluation of the same tree.
        evaluator = Evaluator(square_instance)
        expression = ssum("v", var("v") @ var("v").T)
        first = evaluator.run(expression)
        expected = first.copy()
        first[...] = -123.0
        second = evaluator.run(expression)
        assert np.allclose(second, expected)

    def test_loop_iterator_results_are_independent(self, square_instance):
        # The evaluator binds loop iterators to views of a shared basis
        # matrix; results built from them must still be safe to mutate.
        result = evaluate(ssum("v", var("v")), square_instance)
        result[0, 0] = 77.0
        again = evaluate(ssum("v", var("v")), square_instance)
        assert again[0, 0] == 1.0


class TestApplyEdgeCases:
    def test_apply_result_exceeding_int64_storage_raises_semiring_error(self):
        # Regression: pointwise results that do not fit the primitive kernel
        # dtype used to leak a raw OverflowError (or, worse, wrap silently).
        from repro.exceptions import SemiringError

        big = np.array([[2**40, 1], [1, 2**40]], dtype=object)
        instance = Instance.from_matrices({"A": big}, semiring=NATURAL)
        with pytest.raises(SemiringError):
            evaluate(apply("mul", var("A"), var("A")), instance)

    def test_apply_is_exact_on_the_object_fold_escape_hatch(self):
        from repro.semiring.kernels import (
            Int64Kernels,
            ObjectFoldKernels,
            register_kernels,
        )

        big = np.array([[2**40, 1], [1, 2**40]], dtype=object)
        instance = Instance.from_matrices({"A": big}, semiring=NATURAL)
        register_kernels("natural", ObjectFoldKernels, overwrite=True)
        try:
            result = evaluate(apply("mul", var("A"), var("A")), instance)
            assert result[0, 0] == 2**80
        finally:
            register_kernels(
                "natural",
                lambda s: Int64Kernels(s, allow_negative=False),
                overwrite=True,
            )

    def test_nullary_apply_is_a_typing_error(self, square_instance):
        from repro.exceptions import TypingError
        from repro.matlang.ast import Apply

        with pytest.raises(TypingError):
            evaluate(Apply("gt0", ()), square_instance)

    def test_nullary_apply_is_an_evaluation_error_on_hand_built_trees(
        self, square_instance
    ):
        # Regression: a hand-annotated nullary Apply used to crash with a
        # bare IndexError at operands[0].shape.
        from repro.matlang.ast import Apply
        from repro.matlang.typecheck import TypedExpression

        typed = TypedExpression(Apply("gt0", ()), ("1", "1"), ())
        with pytest.raises(EvaluationError):
            Evaluator(square_instance).run_typed(typed)
