"""Unit tests for the fragment classifier (Section 6, Figure 1)."""

import pytest

from repro.exceptions import FragmentError
from repro.matlang.builder import apply, forloop, prod, ssum, var
from repro.matlang.fragments import (
    Fragment,
    assert_fragment,
    classify,
    is_in_fragment,
    minimal_fragment,
    required_functions,
)
from repro.stdlib import (
    csanky_inverse,
    diagonal_product,
    four_clique_count,
    lu_upper,
    trace,
    transitive_closure_floyd_warshall,
    transitive_closure_product,
)


class TestClassification:
    def test_matlang_core(self):
        assert minimal_fragment(var("A") @ var("B") + var("A").T) == Fragment.MATLANG

    def test_sum_fragment(self):
        assert minimal_fragment(trace("A")) == Fragment.SUM_MATLANG
        assert minimal_fragment(four_clique_count("A")) == Fragment.SUM_MATLANG

    def test_fo_fragment(self):
        assert minimal_fragment(diagonal_product("A")) == Fragment.FO_MATLANG

    def test_prod_fragment(self):
        assert minimal_fragment(transitive_closure_product("A")) == Fragment.PROD_MATLANG

    def test_for_fragment(self):
        assert minimal_fragment(transitive_closure_floyd_warshall("A")) == Fragment.FOR_MATLANG
        assert minimal_fragment(lu_upper("A")) == Fragment.FOR_MATLANG

    def test_mixed_quantifiers_take_the_largest(self):
        expression = ssum("v", var("v").T @ prod("w", var("A")) @ var("v"))
        assert minimal_fragment(expression) == Fragment.PROD_MATLANG

    def test_for_dominates_everything(self):
        expression = ssum("v", var("v").T @ forloop("w", "X", var("X") + var("A")) @ var("v"))
        assert minimal_fragment(expression) == Fragment.FOR_MATLANG


class TestInclusions:
    def test_figure1_chain(self):
        chain = [
            Fragment.MATLANG,
            Fragment.SUM_MATLANG,
            Fragment.FO_MATLANG,
            Fragment.PROD_MATLANG,
            Fragment.FOR_MATLANG,
        ]
        for smaller, larger in zip(chain, chain[1:]):
            assert larger.includes(smaller)
            assert not smaller.includes(larger)

    def test_is_in_fragment(self):
        assert is_in_fragment(trace("A"), Fragment.FOR_MATLANG)
        assert is_in_fragment(trace("A"), Fragment.SUM_MATLANG)
        assert not is_in_fragment(diagonal_product("A"), Fragment.SUM_MATLANG)

    def test_assert_fragment(self):
        assert_fragment(trace("A"), Fragment.SUM_MATLANG)
        with pytest.raises(FragmentError):
            assert_fragment(lu_upper("A"), Fragment.SUM_MATLANG)


class TestReports:
    def test_required_functions(self):
        assert required_functions(lu_upper("A")) == ("div",)
        assert required_functions(trace("A")) == ()

    def test_language_name_mentions_functions(self):
        report = classify(csanky_inverse("A"))
        assert report.language_name == "for-MATLANG[div]"
        assert classify(trace("A")).language_name == "sum-MATLANG"

    def test_report_flags(self):
        report = classify(apply("gt0", prod("v", var("A") + var("A"))))
        assert report.uses_product and not report.uses_for_loop
        assert report.functions == ("gt0",)

    def test_display_names(self):
        assert Fragment.SUM_MATLANG.display_name == "sum-MATLANG"
        assert Fragment.FOR_MATLANG.display_name == "for-MATLANG"
