"""Unit tests for the pointwise function registry (MATLANG[F])."""

import pytest

from repro.exceptions import EvaluationError
from repro.matlang.functions import FunctionRegistry, PointwiseFunction, default_registry
from repro.semiring import NATURAL, REAL


class TestDefaultRegistry:
    def test_contains_paper_functions(self):
        registry = default_registry()
        assert "div" in registry
        assert "gt0" in registry

    def test_division_semantics(self):
        registry = default_registry()
        assert registry.get("div")(REAL, 6.0, 3.0) == 2.0

    def test_division_by_zero_is_zero(self):
        """The convention x / 0 := 0 used implicitly by the LU construction."""
        registry = default_registry()
        assert registry.get("div")(REAL, 5.0, 0.0) == 0.0

    def test_division_requires_a_field(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.get("div")(NATURAL, 4, 2)

    def test_gt0(self):
        registry = default_registry()
        gt0 = registry.get("gt0")
        assert gt0(REAL, 0.5) == 1.0
        assert gt0(REAL, 0.0) == 0.0
        assert gt0(REAL, -2.0) == 0.0

    def test_nonzero_works_over_any_semiring(self):
        registry = default_registry()
        nonzero = registry.get("nonzero")
        assert nonzero(NATURAL, 3) == 1
        assert nonzero(NATURAL, 0) == 0

    def test_variadic_mul_and_add(self):
        registry = default_registry()
        assert registry.get("mul")(REAL, 2.0, 3.0, 4.0) == 24.0
        assert registry.get("add")(NATURAL, 1, 2, 3) == 6

    def test_sub_and_neg_require_a_ring(self):
        registry = default_registry()
        assert registry.get("sub")(REAL, 5.0, 2.0) == 3.0
        with pytest.raises(EvaluationError):
            registry.get("sub")(NATURAL, 5, 2)
        with pytest.raises(EvaluationError):
            registry.get("neg")(NATURAL, 5)

    def test_square_min_max_abs(self):
        registry = default_registry()
        assert registry.get("square")(REAL, 3.0) == 9.0
        assert registry.get("min")(REAL, 3.0, 1.0, 2.0) == 1.0
        assert registry.get("max")(REAL, 3.0, 1.0, 2.0) == 3.0
        assert registry.get("abs")(REAL, -3.0) == 3.0


class TestRegistryMechanics:
    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            default_registry().get("no-such-function")

    def test_arity_checking(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.get("div")(REAL, 1.0)

    def test_variadic_requires_at_least_one_argument(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.get("mul")(REAL)

    def test_register_simple(self):
        registry = FunctionRegistry()
        registry.register_simple("double", 1, lambda x: 2 * x)
        assert registry.get("double")(REAL, 3.0) == 6.0

    def test_duplicate_registration_raises(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.register(PointwiseFunction("div", 2, lambda s, a, b: a))

    def test_overwrite_allowed_when_requested(self):
        registry = default_registry()
        registry.register(
            PointwiseFunction("div", 2, lambda s, a, b: 42.0), overwrite=True
        )
        assert registry.get("div")(REAL, 1.0, 1.0) == 42.0

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register_simple("extra", 1, lambda x: x)
        assert "extra" in clone
        assert "extra" not in registry

    def test_names_listing(self):
        assert "div" in default_registry().names()
