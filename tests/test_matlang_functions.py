"""Unit tests for the pointwise function registry (MATLANG[F])."""

import pytest

from repro.exceptions import EvaluationError
from repro.matlang.functions import FunctionRegistry, PointwiseFunction, default_registry
from repro.semiring import NATURAL, REAL


class TestDefaultRegistry:
    def test_contains_paper_functions(self):
        registry = default_registry()
        assert "div" in registry
        assert "gt0" in registry

    def test_division_semantics(self):
        registry = default_registry()
        assert registry.get("div")(REAL, 6.0, 3.0) == 2.0

    def test_division_by_zero_is_zero(self):
        """The convention x / 0 := 0 used implicitly by the LU construction."""
        registry = default_registry()
        assert registry.get("div")(REAL, 5.0, 0.0) == 0.0

    def test_division_requires_a_field(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.get("div")(NATURAL, 4, 2)

    def test_gt0(self):
        registry = default_registry()
        gt0 = registry.get("gt0")
        assert gt0(REAL, 0.5) == 1.0
        assert gt0(REAL, 0.0) == 0.0
        assert gt0(REAL, -2.0) == 0.0

    def test_nonzero_works_over_any_semiring(self):
        registry = default_registry()
        nonzero = registry.get("nonzero")
        assert nonzero(NATURAL, 3) == 1
        assert nonzero(NATURAL, 0) == 0

    def test_variadic_mul_and_add(self):
        registry = default_registry()
        assert registry.get("mul")(REAL, 2.0, 3.0, 4.0) == 24.0
        assert registry.get("add")(NATURAL, 1, 2, 3) == 6

    def test_sub_and_neg_require_a_ring(self):
        registry = default_registry()
        assert registry.get("sub")(REAL, 5.0, 2.0) == 3.0
        with pytest.raises(EvaluationError):
            registry.get("sub")(NATURAL, 5, 2)
        with pytest.raises(EvaluationError):
            registry.get("neg")(NATURAL, 5)

    def test_square_min_max_abs(self):
        registry = default_registry()
        assert registry.get("square")(REAL, 3.0) == 9.0
        assert registry.get("min")(REAL, 3.0, 1.0, 2.0) == 1.0
        assert registry.get("max")(REAL, 3.0, 1.0, 2.0) == 3.0
        assert registry.get("abs")(REAL, -3.0) == 3.0


class TestRegistryMechanics:
    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            default_registry().get("no-such-function")

    def test_arity_checking(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.get("div")(REAL, 1.0)

    def test_variadic_requires_at_least_one_argument(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.get("mul")(REAL)

    def test_register_simple(self):
        registry = FunctionRegistry()
        registry.register_simple("double", 1, lambda x: 2 * x)
        assert registry.get("double")(REAL, 3.0) == 6.0

    def test_duplicate_registration_raises(self):
        registry = default_registry()
        with pytest.raises(EvaluationError):
            registry.register(PointwiseFunction("div", 2, lambda s, a, b: a))

    def test_overwrite_allowed_when_requested(self):
        registry = default_registry()
        registry.register(
            PointwiseFunction("div", 2, lambda s, a, b: 42.0), overwrite=True
        )
        assert registry.get("div")(REAL, 1.0, 1.0) == 42.0

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register_simple("extra", 1, lambda x: x)
        assert "extra" in clone
        assert "extra" not in registry

    def test_names_listing(self):
        assert "div" in default_registry().names()


class TestVectorizedApply:
    """Whole-array fast paths for the common pointwise functions."""

    def _registry(self):
        return default_registry()

    def test_vectorized_matches_scalar_loop(self):
        import numpy as np

        from repro.semiring import BOOLEAN, INTEGER, MIN_PLUS

        registry = self._registry()
        cases = [
            (REAL, "gt0", [np.array([[-1.0, 0.5], [0.0, 2.0]])]),
            (REAL, "div", [np.array([[6.0, 1.0], [5.0, -2.0]]),
                           np.array([[3.0, 0.0], [2.0, 4.0]])]),
            (REAL, "mul", [np.array([[2.0, 3.0], [4.0, 5.0]])] * 3),
            (REAL, "add", [np.array([[2.0, 3.0], [4.0, 5.0]])] * 2),
            (REAL, "sub", [np.array([[2.0, 3.0], [4.0, 5.0]]),
                           np.array([[1.0, 1.0], [9.0, 1.0]])]),
            (REAL, "neg", [np.array([[2.0, -3.0], [0.0, 5.0]])]),
            (REAL, "square", [np.array([[2.0, -3.0], [0.0, 5.0]])]),
            (REAL, "nonzero", [np.array([[2.0, 0.0], [0.0, 5.0]])]),
            (NATURAL, "gt0", [np.array([[0, 3], [1, 0]], dtype=np.int64)]),
            (NATURAL, "mul", [np.array([[2, 3], [4, 5]], dtype=np.int64)] * 2),
            (BOOLEAN, "gt0", [np.array([[True, False], [False, True]])]),
            (BOOLEAN, "mul", [np.array([[True, False], [True, True]])] * 2),
            (MIN_PLUS, "gt0", [np.array([[0.5, np.inf], [-1.0, 0.0]])]),
        ]
        for semiring, name, operands in cases:
            operands = [semiring.coerce_matrix(op) for op in operands]
            function = registry.get(name)
            fast = function.apply_matrix(semiring, operands)
            # Reference: force the scalar loop by dropping the vectorizer.
            slow = PointwiseFunction(
                function.name, function.arity, function.implementation
            ).apply_matrix(semiring, operands)
            assert fast.dtype == semiring.kernels.dtype, (semiring.name, name)
            assert semiring.matrices_equal(fast, slow), (semiring.name, name)

    def test_vectorized_mul_overflow_still_raises(self):
        import numpy as np

        from repro.exceptions import SemiringError

        registry = self._registry()
        big = NATURAL.coerce_matrix(np.array([[2**40, 1], [1, 2**40]], dtype=object))
        with pytest.raises(SemiringError):
            registry.get("mul").apply_matrix(NATURAL, [big, big])

    def test_variadic_int64_chain_with_fitting_result_stays_exact(self):
        # Regression: mul(2**40, 2**40, 0) has an int64-overflowing
        # *intermediate* but an exact final value of 0; the vectorized chain
        # must decline (not raise) so the scalar fold's answer comes back.
        import numpy as np

        registry = self._registry()
        big = NATURAL.coerce_matrix(np.array([[2**40]], dtype=object))
        zero = NATURAL.coerce_matrix(np.array([[0]], dtype=object))
        result = registry.get("mul").apply_matrix(NATURAL, [big, big, zero])
        assert result[0, 0] == 0
        from repro.semiring import INTEGER

        high = INTEGER.coerce_matrix(np.array([[2**62]], dtype=object))
        low = INTEGER.coerce_matrix(np.array([[-(2**62)]], dtype=object))
        summed = registry.get("add").apply_matrix(INTEGER, [high, high, low, low])
        assert summed[0, 0] == 0

    def test_single_operand_mul_returns_a_fresh_array(self):
        import numpy as np

        registry = self._registry()
        operand = REAL.coerce_matrix(np.array([[1.0, 2.0]]))
        result = registry.get("mul").apply_matrix(REAL, [operand])
        result[0, 0] = 99.0
        assert operand[0, 0] == 1.0

    def test_object_dtype_falls_back_to_scalar_loop(self):
        import numpy as np

        from repro.semiring.provenance import PROVENANCE, Polynomial

        registry = self._registry()
        matrix = np.empty((1, 2), dtype=object)
        matrix[0, 0] = Polynomial.variable("p")
        matrix[0, 1] = PROVENANCE.zero
        result = registry.get("nonzero").apply_matrix(PROVENANCE, [matrix])
        assert result[0, 0] == PROVENANCE.one
        assert result[0, 1] == PROVENANCE.zero
