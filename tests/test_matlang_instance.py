"""Unit tests for MATLANG instances."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.matlang.instance import Instance
from repro.matlang.schema import Schema
from repro.semiring import BOOLEAN, NATURAL


class TestConstruction:
    def test_basic_instance(self):
        schema = Schema({"A": ("alpha", "alpha"), "v": ("alpha", "1")})
        instance = Instance(schema, {"alpha": 2}, {"A": np.eye(2), "v": [1.0, 2.0]})
        assert instance.dimension("alpha") == 2
        assert instance.matrix("v").shape == (2, 1)

    def test_scalar_symbol_dimension_is_one(self):
        schema = Schema({"A": ("alpha", "alpha")})
        instance = Instance(schema, {"alpha": 3}, {})
        assert instance.dimension("1") == 1

    def test_shape_mismatch_raises(self):
        schema = Schema({"A": ("alpha", "alpha")})
        with pytest.raises(SchemaError):
            Instance(schema, {"alpha": 3}, {"A": np.eye(2)})

    def test_undeclared_matrix_raises(self):
        schema = Schema({"A": ("alpha", "alpha")})
        with pytest.raises(SchemaError):
            Instance(schema, {"alpha": 2}, {"B": np.eye(2)})

    def test_non_positive_dimension_raises(self):
        schema = Schema({"A": ("alpha", "alpha")})
        with pytest.raises(SchemaError):
            Instance(schema, {"alpha": 0}, {})

    def test_unknown_symbol_dimension_raises(self):
        schema = Schema({"A": ("alpha", "alpha")})
        instance = Instance(schema, {"alpha": 2}, {})
        with pytest.raises(SchemaError):
            instance.dimension("beta")

    def test_missing_matrix_raises(self):
        schema = Schema({"A": ("alpha", "alpha")})
        instance = Instance(schema, {"alpha": 2}, {})
        with pytest.raises(SchemaError):
            instance.matrix("A")


class TestFromMatrices:
    def test_infers_square_and_vector_types(self):
        instance = Instance.from_matrices({"A": np.eye(3), "v": [1.0, 2.0, 3.0]})
        assert instance.schema.size("A") == ("alpha", "alpha")
        assert instance.schema.size("v") == ("alpha", "1")
        assert instance.dimension("alpha") == 3

    def test_scalar_variable(self):
        instance = Instance.from_matrices({"c": 5.0, "A": np.eye(2)})
        assert instance.schema.size("c") == ("1", "1")

    def test_row_vector(self):
        instance = Instance.from_matrices({"r": np.ones((1, 3)), "A": np.eye(3)})
        assert instance.schema.size("r") == ("1", "alpha")

    def test_conflicting_dimensions_raise(self):
        with pytest.raises(SchemaError):
            Instance.from_matrices({"A": np.eye(3), "B": np.eye(4)})

    def test_explicit_dimension_conflict_raises(self):
        with pytest.raises(SchemaError):
            Instance.from_matrices({"A": np.eye(3)}, dimensions={"alpha": 4})

    def test_other_semirings(self):
        instance = Instance.from_matrices({"A": np.array([[0, 1], [1, 0]])}, semiring=BOOLEAN)
        assert bool(instance.matrix("A")[0, 1]) is True

    def test_natural_semiring_rejects_negative_entries(self):
        with pytest.raises(Exception):
            Instance.from_matrices({"A": np.array([[-1, 0], [0, 0]])}, semiring=NATURAL)


class TestUpdates:
    def test_with_matrix_creates_new_instance(self):
        instance = Instance.from_matrices({"A": np.eye(2), "v": [0.0, 0.0]})
        updated = instance.with_matrix("v", [1.0, 1.0])
        assert np.allclose(np.asarray(updated.matrix("v"), float).ravel(), [1.0, 1.0])
        assert np.allclose(np.asarray(instance.matrix("v"), float).ravel(), [0.0, 0.0])

    def test_shape_helpers(self):
        instance = Instance.from_matrices({"A": np.eye(3), "v": [1.0, 2.0, 3.0]})
        assert instance.shape_of("A") == (3, 3)
        assert instance.shape_of_type(("alpha", "1")) == (3, 1)
