"""Unit tests for the surface-syntax parser and the pretty printer."""

import numpy as np
import pytest

from repro.exceptions import ParseError
from repro.matlang.ast import (
    Add,
    Apply,
    Diag,
    ForLoop,
    HadamardLoop,
    Literal,
    MatMul,
    OneVector,
    ProductLoop,
    ScalarMul,
    SumLoop,
    Transpose,
    TypeHint,
    Var,
)
from repro.matlang.builder import forloop, had, hint, lit, prod, ssum, var
from repro.matlang.evaluator import evaluate
from repro.matlang.parser import parse, tokenize
from repro.matlang.printer import to_text


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [token.kind for token in tokenize("A + 2 .* v'")]
        assert kinds == ["name", "+", "number", ".*", "name", "'", "end"]

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("A # a comment\n + B")
        assert [t.text for t in tokens if t.kind != "end"] == ["A", "+", "B"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("A ? B")


class TestParsing:
    def test_variables_and_operators(self):
        assert parse("A") == Var("A")
        assert parse("A + B") == Add(Var("A"), Var("B"))
        assert parse("A * B") == MatMul(Var("A"), Var("B"))
        assert parse("2 .* A") == ScalarMul(Literal(2.0), Var("A"))
        assert parse("A'") == Transpose(Var("A"))

    def test_precedence(self):
        assert parse("A + B * C") == Add(Var("A"), MatMul(Var("B"), Var("C")))
        assert parse("(A + B) * C") == MatMul(Add(Var("A"), Var("B")), Var("C"))

    def test_left_associativity(self):
        assert parse("A + B + C") == Add(Add(Var("A"), Var("B")), Var("C"))
        assert parse("A * B * C") == MatMul(MatMul(Var("A"), Var("B")), Var("C"))

    def test_builtins(self):
        assert parse("ones(A)") == OneVector(Var("A"))
        assert parse("diag(ones(A))") == Diag(OneVector(Var("A")))
        assert parse("hint(A, alpha, 1)") == TypeHint(Var("A"), "alpha", "1")
        assert parse("hint(A, _, _)") == TypeHint(Var("A"), None, None)

    def test_function_application(self):
        assert parse("div(A, B)") == Apply("div", (Var("A"), Var("B")))
        assert parse("gt0(A)") == Apply("gt0", (Var("A"),))

    def test_loops(self):
        assert parse("for v, X . X + v") == ForLoop("v", "X", Add(Var("X"), Var("v")))
        assert parse("for v, X = A . X * A") == ForLoop(
            "v", "X", MatMul(Var("X"), Var("A")), Var("A")
        )
        assert parse("sum v . v' * A * v") == SumLoop(
            "v", MatMul(MatMul(Transpose(Var("v")), Var("A")), Var("v"))
        )
        assert isinstance(parse("prod v . A"), ProductLoop)
        assert isinstance(parse("had v . A"), HadamardLoop)

    def test_loop_body_extends_right(self):
        parsed = parse("for v, X . X + v * v'")
        assert isinstance(parsed, ForLoop)
        assert parsed.body == Add(Var("X"), MatMul(Var("v"), Transpose(Var("v"))))

    def test_keyword_cannot_be_variable(self):
        with pytest.raises(ParseError):
            parse("for for, X . X")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse("A + B )")

    def test_numbers(self):
        assert parse("2.5") == Literal(2.5)
        assert parse("1e2") == Literal(100.0)

    def test_nested_quantifiers(self):
        parsed = parse("sum u . sum v . u' * A * v")
        assert isinstance(parsed, SumLoop)
        assert isinstance(parsed.body, SumLoop)


class TestRoundTrip:
    EXPRESSIONS = [
        var("A") + var("B") @ var("C"),
        lit(2) * (var("A") + var("B")),
        hint(forloop("v", "X", var("X") + var("v")), "alpha", "1"),
        ssum("v", var("v").T @ var("A") @ var("v")),
        prod("v", Diag(OneVector(var("A"))) + var("A")),
        had("v", var("v").T @ var("A") @ var("v")),
        forloop("v", "X", var("X") @ var("A"), init=var("A")),
        Apply("div", (lit(1), var("c"))),
        lit(-1) * var("A"),
    ]

    @pytest.mark.parametrize("expression", EXPRESSIONS, ids=lambda e: to_text(e)[:40])
    def test_parse_print_roundtrip(self, expression):
        assert parse(to_text(expression)) == expression

    def test_printed_text_evaluates_identically(self, square_instance):
        from repro.stdlib import trace

        expression = trace("A")
        reparsed = parse(to_text(expression))
        assert np.allclose(
            evaluate(expression, square_instance), evaluate(reparsed, square_instance)
        )

    def test_printer_handles_negative_literals(self):
        text = to_text(lit(-1) * var("A"))
        assert parse(text) == lit(-1) * var("A")
