"""Unit tests for MATLANG schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.matlang.schema import (
    SCALAR_SYMBOL,
    Schema,
    scalar_type,
    square_type,
    transpose_type,
    vector_type,
)


class TestTypeHelpers:
    def test_scalar_vector_square(self):
        assert scalar_type() == ("1", "1")
        assert vector_type("alpha") == ("alpha", "1")
        assert square_type("alpha") == ("alpha", "alpha")

    def test_transpose_type(self):
        assert transpose_type(("alpha", "beta")) == ("beta", "alpha")


class TestSchema:
    def test_basic_lookup(self):
        schema = Schema({"A": ("alpha", "alpha"), "v": ("alpha", "1")})
        assert schema.size("A") == ("alpha", "alpha")
        assert schema.declares("v")
        assert not schema.declares("w")

    def test_unknown_variable_raises(self):
        with pytest.raises(SchemaError):
            Schema({}).size("A")

    def test_invalid_type_shape_raises(self):
        with pytest.raises(SchemaError):
            Schema({"A": ("alpha",)})

    def test_invalid_symbol_type_raises(self):
        with pytest.raises(SchemaError):
            Schema({"A": (1, 2)})

    def test_of_and_square_constructors(self):
        assert Schema.of(A=("alpha", "alpha")).size("A") == ("alpha", "alpha")
        schema = Schema.square("A", "B", symbol="gamma")
        assert schema.size("B") == ("gamma", "gamma")

    def test_with_variable_returns_copy(self):
        schema = Schema({"A": ("alpha", "alpha")})
        extended = schema.with_variable("v", ("alpha", "1"))
        assert extended.declares("v")
        assert not schema.declares("v")

    def test_merged_with_conflict(self):
        left = Schema({"A": ("alpha", "alpha")})
        right = Schema({"A": ("beta", "beta")})
        with pytest.raises(SchemaError):
            left.merged_with(right)

    def test_merged_with_union(self):
        left = Schema({"A": ("alpha", "alpha")})
        right = Schema({"v": ("alpha", "1")})
        merged = left.merged_with(right)
        assert set(merged.variables()) == {"A", "v"}

    def test_symbols_always_contain_scalar(self):
        schema = Schema({"A": ("alpha", "beta")})
        assert SCALAR_SYMBOL in schema.symbols()
        assert set(schema.symbols()) == {"1", "alpha", "beta"}

    def test_square_schema_detection(self):
        assert Schema({"A": ("alpha", "alpha"), "v": ("alpha", "1")}).is_square_schema()
        assert not Schema({"A": ("alpha", "beta")}).is_square_schema()

    def test_container_protocol(self):
        schema = Schema({"A": ("alpha", "alpha"), "B": ("alpha", "1")})
        assert "A" in schema
        assert sorted(schema) == ["A", "B"]
        assert len(schema) == 2
