"""Unit tests for MATLANG type inference (the typing relation of Section 2/3.1)."""

import pytest

from repro.exceptions import TypingError
from repro.matlang.ast import Diag, OneVector
from repro.matlang.builder import apply, forloop, had, hint, lit, prod, ssum, var
from repro.matlang.schema import Schema
from repro.matlang.typecheck import annotate, infer_type, is_well_typed

SCHEMA = Schema({"A": ("alpha", "alpha"), "v": ("alpha", "1"), "B": ("alpha", "beta")})


class TestCoreTypingRules:
    def test_variable(self):
        assert infer_type(var("A"), SCHEMA) == ("alpha", "alpha")

    def test_undeclared_variable_raises(self):
        with pytest.raises(TypingError):
            infer_type(var("Z"), SCHEMA)

    def test_transpose_swaps(self):
        assert infer_type(var("B").T, SCHEMA) == ("beta", "alpha")

    def test_ones_vector(self):
        assert infer_type(OneVector(var("B")), SCHEMA) == ("alpha", "1")

    def test_diag_requires_vector(self):
        assert infer_type(Diag(var("v")), SCHEMA) == ("alpha", "alpha")
        with pytest.raises(TypingError):
            infer_type(Diag(var("A")), SCHEMA)

    def test_matmul_chains_inner_symbols(self):
        assert infer_type(var("A") @ var("B"), SCHEMA) == ("alpha", "beta")

    def test_matmul_mismatch(self):
        with pytest.raises(TypingError):
            infer_type(var("B") @ var("B"), SCHEMA)

    def test_addition_requires_equal_types(self):
        assert infer_type(var("A") + var("A"), SCHEMA) == ("alpha", "alpha")
        with pytest.raises(TypingError):
            infer_type(var("A") + var("B"), SCHEMA)

    def test_scalar_multiplication_requires_scalar_left(self):
        assert infer_type(lit(2) * var("B"), SCHEMA) == ("alpha", "beta")
        with pytest.raises(TypingError):
            infer_type(var("A") * var("B"), SCHEMA)

    def test_quadratic_form_is_scalar(self):
        assert infer_type(var("v").T @ var("A") @ var("v"), SCHEMA) == ("1", "1")

    def test_pointwise_application_requires_equal_types(self):
        assert infer_type(apply("mul", var("A"), var("A")), SCHEMA) == ("alpha", "alpha")
        with pytest.raises(TypingError):
            infer_type(apply("mul", var("A"), var("B")), SCHEMA)

    def test_literal_is_scalar(self):
        assert infer_type(lit(3), SCHEMA) == ("1", "1")


class TestLoopTyping:
    def test_for_loop_type_matches_accumulator(self):
        loop = forloop("w", "X", var("X") + var("w") @ var("w").T @ var("A"))
        assert infer_type(loop, SCHEMA) == ("alpha", "alpha")

    def test_declared_bound_variables_use_schema_types(self):
        schema = Schema(
            {"A": ("alpha", "alpha"), "w": ("alpha", "1"), "X": ("alpha", "1")}
        )
        loop = forloop("w", "X", var("X") + var("w"))
        assert infer_type(loop, schema) == ("alpha", "1")

    def test_iterator_must_be_vector(self):
        schema = Schema({"A": ("alpha", "alpha"), "w": ("alpha", "alpha")})
        loop = forloop("w", "X", var("X") + var("A"))
        with pytest.raises(TypingError):
            infer_type(loop, schema)

    def test_body_must_match_accumulator(self):
        schema = Schema({"A": ("alpha", "beta"), "X": ("alpha", "alpha")})
        loop = forloop("w", "X", var("A"))
        with pytest.raises(TypingError):
            infer_type(loop, schema)

    def test_initialiser_constrains_accumulator(self):
        loop = forloop("w", "X", var("X") @ var("A"), init=var("A"))
        assert infer_type(loop, SCHEMA) == ("alpha", "alpha")

    def test_sum_quantifier(self):
        assert infer_type(ssum("w", var("w").T @ var("A") @ var("w")), SCHEMA) == ("1", "1")

    def test_product_quantifier_requires_square_body(self):
        assert infer_type(prod("w", var("A")), SCHEMA) == ("alpha", "alpha")
        with pytest.raises(TypingError):
            infer_type(prod("w", var("B")), SCHEMA)

    def test_hadamard_quantifier(self):
        assert infer_type(had("w", var("A")), SCHEMA) == ("alpha", "alpha")

    def test_type_hint_anchors_unconstrained_dimensions(self):
        schema = Schema({"A": ("alpha", "alpha"), "C": ("gamma", "gamma")})
        loop = hint(forloop("w", "X", var("w")), "gamma", "1")
        typed = annotate(loop, schema)
        assert typed.type == ("gamma", "1")
        assert typed.children[0].iterator_symbol == "gamma"

    def test_type_hint_conflict_raises(self):
        with pytest.raises(TypingError):
            infer_type(hint(var("A"), "beta", None), SCHEMA)

    def test_default_symbol_resolves_free_iterators(self):
        schema = Schema({"A": ("alpha", "alpha")})
        typed = annotate(forloop("w", "X", var("w")), schema)
        # The schema has a single non-scalar symbol, so the otherwise
        # unconstrained loop defaults to it (square-schema convention).
        assert typed.iterator_symbol == "alpha"

    def test_two_symbol_schema_leaves_iterator_unresolved(self):
        schema = Schema({"A": ("alpha", "alpha"), "B": ("beta", "beta")})
        typed = annotate(forloop("w", "X", var("w")), schema)
        assert typed.iterator_symbol.startswith("?")


class TestAnnotation:
    def test_annotated_tree_mirrors_expression(self):
        expression = ssum("w", var("w").T @ var("A") @ var("w"))
        typed = annotate(expression, SCHEMA)
        assert typed.expression is expression
        assert len(typed.children) == 1

    def test_free_names_recorded(self):
        expression = ssum("w", var("w").T @ var("A") @ var("w"))
        typed = annotate(expression, SCHEMA)
        assert typed.free_names == {"A"}
        body = typed.children[0]
        assert "w" in body.free_names

    def test_is_well_typed_helper(self):
        assert is_well_typed(var("A") @ var("A"), SCHEMA)
        assert not is_well_typed(var("B") @ var("B"), SCHEMA)

    def test_shadowing_of_loop_variables(self):
        inner = forloop("w", "X", var("X") + var("w") @ var("w").T @ var("A"))
        outer = forloop("w", "Y", var("Y") + inner)
        assert infer_type(outer, SCHEMA) == ("alpha", "alpha")
