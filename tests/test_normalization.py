"""Tests for the staged optimizer: normalization, cost-based ordering and
adaptive physical planning.

The normalization property suite runs re-associated / commuted plans against
the reference tree-walk interpreter across every registered semiring, with
the exactness contract the optimizer promises: **bitwise** agreement over
exact semirings (boolean, tropical, integers, naturals, provenance
polynomials) and tolerance agreement over float64, where re-association is
an algebraic identity but not a floating-point one.
"""

import numpy as np
import pytest

from repro.experiments.harness import CompiledWorkload
from repro.experiments.workloads import (
    random_digraph,
    random_integer_matrix,
    random_matrix,
)
from repro.matlang.builder import forloop, ssum, var
from repro.matlang.compiler import (
    DEFAULT_OPTIONS,
    OptimizationOptions,
    clear_plan_cache,
    compile_expression,
)
from repro.matlang.cost import chain_order, symbol_weight
from repro.matlang.evaluator import Evaluator
from repro.matlang.instance import Instance
from repro.matlang.normalize import normalize, structural_key
from repro.matlang.typecheck import annotate
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.backends import (
    AUTO_SPARSE_MIN_DIMENSION,
    instance_statistics,
    select_backend,
)
from repro.semiring.provenance import PROVENANCE, Polynomial

try:
    import scipy.sparse  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    HAVE_SCIPY = False

#: Semirings whose operations are exact: re-association must be bitwise.
EXACT_SEMIRINGS = [NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]
ALL_SEMIRINGS = [REAL] + EXACT_SEMIRINGS


def _instance_for(semiring, dimension=4, seed=0):
    """A square instance with A, B, C matrices valid in the carrier."""
    if semiring.name == "boolean":
        mats = [random_digraph(dimension, probability=0.4, seed=seed + i) for i in range(3)]
    elif semiring.name in ("natural", "integer"):
        mats = [random_integer_matrix(dimension, seed=seed + i) for i in range(3)]
    elif semiring.name in ("min_plus", "max_plus"):
        # Integer-valued weights: tropical *times* is float addition, which
        # only re-associates bitwise when the sums stay exactly
        # representable.  (The semiring's min/max *plus* is bitwise for any
        # carrier values.)
        mats = [
            np.round(8 * np.abs(random_matrix(dimension, seed=seed + i)))
            for i in range(3)
        ]
    elif semiring.name == "provenance":
        rng = np.random.default_rng(seed)
        mats = []
        for tag in "abc":
            matrix = np.empty((dimension, dimension), dtype=object)
            for i in range(dimension):
                for j in range(dimension):
                    matrix[i, j] = (
                        Polynomial.variable(f"{tag}{i}{j}") if rng.random() < 0.6 else 0
                    )
            mats.append(matrix)
    else:
        mats = [random_matrix(dimension, seed=seed + i) for i in range(3)]
    return Instance.from_matrices(
        {"A": mats[0], "B": mats[1], "C": mats[2]}, semiring=semiring
    )


def _agree(semiring, left, right):
    """Bitwise agreement for exact semirings, tolerance for float64."""
    tolerance = 1e-9 if semiring.name == "real" else 0.0
    return semiring.matrices_equal(left, right, tolerance)


A, B, C = var("A"), var("B"), var("C")

#: Families of algebraically equal expressions that differ only in
#: association / operand order; every member must compile to the same value.
VARIANT_FAMILIES = [
    pytest.param([(A @ B) @ C, A @ (B @ C)], id="matmul-assoc"),
    pytest.param([(A + B) + C, A + (B + C), (C + A) + B, B + (C + A)], id="add-assoc-comm"),
    pytest.param(
        [((A @ B) @ C) @ A, (A @ (B @ C)) @ A, A @ (B @ (C @ A))],
        id="matmul-4chain",
    ),
    pytest.param(
        [(A @ B) + (B @ A), (B @ A) + (A @ B)],
        id="add-commute-products",
    ),
    pytest.param(
        [ssum("_v", (A @ B) @ var("_v")), ssum("_v", A @ (B @ var("_v")))],
        id="sum-quantifier-assoc",
    ),
]


class TestNormalizationProperty:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("variants", VARIANT_FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reassociated_variants_agree_with_interpreter(
        self, semiring, variants, seed
    ):
        instance = _instance_for(semiring, dimension=3, seed=seed)
        interpreter = Evaluator(instance, compile=False)
        compiled = Evaluator(instance)
        results = [compiled.run(expression) for expression in variants]
        references = [interpreter.run(expression) for expression in variants]
        for result, reference in zip(results, references):
            assert _agree(semiring, result, reference)
        # All re-associated variants collapse to one canonical plan, so the
        # compiled results agree *bitwise* with each other — even over
        # float64, where a shared evaluation order makes rounding identical.
        for other in results[1:]:
            assert semiring.matrices_equal(results[0], other, 0.0)

    @pytest.mark.parametrize("variants", VARIANT_FAMILIES)
    def test_variants_share_one_plan(self, variants):
        schema = _instance_for(REAL).schema
        plans = [compile_expression(expression, schema) for expression in variants]
        canonical = plans[0].describe()
        for plan in plans[1:]:
            assert plan.describe() == canonical

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_reassociated_sum_quantifier_fuses_loop_free(self, semiring):
        """The ISSUE's motivating case: ``Sigma_v A . (B . v)``."""
        instance = _instance_for(semiring, dimension=4, seed=3)
        expression = ssum("_v", A @ (B @ var("_v")))
        plan = compile_expression(expression, instance.schema)
        assert plan.count_ops("loop") == 0, plan.explain()
        result = Evaluator(instance).run(expression)
        reference = Evaluator(instance, compile=False).run(expression)
        assert _agree(semiring, result, reference)


class TestChainAwareFusion:
    """The widened quantifier rules fire on chains of any association."""

    def _plan(self, expression):
        return compile_expression(expression, _instance_for(REAL).schema)

    def test_col_sums_through_chain(self):
        plan = self._plan(ssum("_v", (var("_v").T @ A) @ B))
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("col_sums") + plan.count_ops("ones_type") >= 1

    def test_trace_of_chain(self):
        plan = self._plan(ssum("_v", var("_v").T @ (A @ (B @ var("_v")))))
        assert plan.count_ops("loop") == 0
        assert plan.count_ops("trace") == 1

    def test_selector_pair_mid_chain_vanishes(self):
        expression = ssum("_v", (A @ var("_v")) @ (var("_v").T @ B))
        plan = self._plan(expression)
        assert plan.count_ops("loop") == 0
        # Sigma_v A.v.v^T.B = A.B: two loads and one matmul, nothing else.
        assert plan.count_ops("matmul") == 1
        instance = _instance_for(REAL, dimension=4, seed=5)
        result = Evaluator(instance).run(expression)
        reference = Evaluator(instance, compile=False).run(expression)
        assert _agree(REAL, result, reference)

    def test_iterator_inner_product_counts_dimension(self):
        expression = ssum("_v", var("_v").T @ var("_v"))
        instance = _instance_for(NATURAL, dimension=5, seed=1)
        plan = compile_expression(expression, instance.schema)
        assert plan.count_ops("loop") == 0
        result = Evaluator(instance).run(expression)
        assert result[0, 0] == 5
        reference = Evaluator(instance, compile=False).run(expression)
        assert _agree(NATURAL, result, reference)

    def test_for_loop_sum_recognised_through_flattened_adds(self):
        # ``for v, X. (A.v + (X + A^T.v))``: the accumulator is one summand
        # of a flattened chain — still the Sigma desugaring, still fuses.
        body = (A @ var("_v")) + (var("_X") + (A.T @ var("_v")))
        expression = forloop("_v", "_X", body)
        instance = _instance_for(REAL, dimension=4, seed=6)
        plan = compile_expression(expression, instance.schema)
        assert plan.count_ops("loop") == 0
        result = Evaluator(instance).run(expression)
        reference = Evaluator(instance, compile=False).run(expression)
        assert _agree(REAL, result, reference)


class TestNormalizePass:
    def test_canonical_form_is_left_deep_and_sorted(self):
        schema = _instance_for(REAL).schema
        typed = annotate((B + A) + C, schema)
        normalized, notes = normalize(typed)
        # Left-deep spine with operands in canonical (sorted) order.
        from repro.matlang.ast import Add, Var

        spine = normalized.expression
        assert isinstance(spine, Add) and isinstance(spine.right, Var)
        assert notes and "addition" in notes[0]

    def test_structural_key_is_deterministic_and_discriminating(self):
        assert structural_key(A @ B) == structural_key(var("A") @ var("B"))
        assert structural_key(A @ B) != structural_key(B @ A)
        assert sorted([structural_key(B), structural_key(A)]) == [
            structural_key(A),
            structural_key(B),
        ]

    def test_normalization_enables_cse_across_associations(self):
        schema = _instance_for(REAL).schema
        expression = ((A @ B) @ C) + (A @ (B @ C))
        plan = compile_expression(expression, schema)
        # Both summands canonicalize to one chain: two matmuls, one add of
        # the same register with itself.
        assert plan.count_ops("matmul") == 2
        add_ops = [op for op in plan.walk_ops() if op.opcode == "add"]
        assert len(add_ops) == 1
        assert add_ops[0].inputs[0] == add_ops[0].inputs[1]

    def test_disabled_stages_preserve_written_order(self):
        schema = _instance_for(REAL).schema
        options = OptimizationOptions(normalize=False, reorder=False)
        written = compile_expression((A @ B) @ C, schema, options)
        assert written.notes == ()
        assert options != DEFAULT_OPTIONS

    def test_options_key_the_plan_cache(self):
        clear_plan_cache()
        schema = _instance_for(REAL).schema.with_variable("v", ("alpha", "1"))
        expression = (A @ B) @ var("v")
        default = compile_expression(expression, schema)
        written = compile_expression(
            expression, schema, OptimizationOptions(normalize=False, reorder=False)
        )
        assert default.describe() != written.describe()
        # And both entries are cached independently.
        assert compile_expression(expression, schema) is default
        assert (
            compile_expression(
                expression, schema, OptimizationOptions(normalize=False, reorder=False)
            )
            is written
        )


class TestCostModel:
    def test_symbol_weights(self):
        assert symbol_weight("1") == 1
        assert symbol_weight("alpha") == symbol_weight("beta") > 1

    def test_chain_order_prefers_vector_first(self):
        # A (n x n) . B (n x n) . v (n x 1): optimal splits after A.
        cost, splits = chain_order([("a", "a"), ("a", "a"), ("a", "1")])
        assert splits[(0, 2)] == 0  # A . (B . v)
        worst, _ = chain_order([("a", "a"), ("a", "a")])
        assert cost < worst + symbol_weight("a")  # quadratic, not cubic

    def test_rectangular_chain_is_reordered_in_the_plan(self):
        instance = _instance_for(REAL, dimension=6)
        schema = instance.schema.with_variable("v", ("alpha", "1"))
        expression = (A @ B) @ var("v")
        plan = compile_expression(expression, schema)
        assert any("re-associated" in note for note in plan.notes)
        # The second matmul consumes the first: the plan multiplies B.v
        # (vector) before A touches anything.
        matmuls = [op for op in plan.ops if op.opcode == "matmul"]
        assert matmuls[0].type[1] == "1" and matmuls[1].type[1] == "1"

    def test_square_chains_keep_canonical_order(self):
        schema = _instance_for(REAL).schema
        plan = compile_expression((A @ B) @ C, schema)
        assert not any("re-associated" in note for note in plan.notes)


class TestPhysicalPlanning:
    def _sparse_instance(self, size=128, cycle=8):
        adjacency = np.zeros((size, size), dtype=bool)
        for start in range(0, size, cycle):
            width = min(cycle, size - start)
            for offset in range(width):
                adjacency[start + offset, start + (offset + 1) % width] = True
        return Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)

    def test_statistics_profile_density(self):
        instance = self._sparse_instance(size=16, cycle=4)
        stats = instance_statistics(instance)
        assert stats.semiring == "boolean"
        assert stats.max_dimension == 16
        assert stats.density == pytest.approx(16 / 256)

    def test_dense_semirings_are_not_profiled(self):
        stats = instance_statistics(_instance_for(REAL))
        assert stats.density is None

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy required for sparse")
    def test_auto_selects_sparse_for_sparse_boolean_reachability(self):
        instance = self._sparse_instance()
        plan = compile_expression(var("A") @ var("A"), instance.schema)
        selection = select_backend(plan, instance)
        assert selection.backend.name == "sparse"

    def test_auto_stays_dense_below_the_size_threshold(self):
        instance = self._sparse_instance(size=AUTO_SPARSE_MIN_DIMENSION // 2)
        plan = compile_expression(var("A") @ var("A"), instance.schema)
        selection = select_backend(plan, instance)
        assert selection.backend.name == "dense"

    def test_auto_stays_dense_for_dense_instances(self):
        instance = Instance.from_matrices(
            {"A": random_digraph(128, probability=0.5, seed=0)}, semiring=BOOLEAN
        )
        plan = compile_expression(var("A") @ var("A"), instance.schema)
        selection = select_backend(plan, instance)
        assert selection.backend.name == "dense"
        assert any("density" in note for note in selection.notes)

    def test_pinned_backend_short_circuits(self):
        instance = self._sparse_instance()
        plan = compile_expression(var("A") @ var("A"), instance.schema)
        selection = select_backend(plan, instance, "dense")
        assert selection.backend.name == "dense"
        assert any("pinned" in note for note in selection.notes)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy required for sparse")
    def test_adaptive_evaluator_matches_pinned_dense(self):
        instance = self._sparse_instance()
        expression = var("A") @ (var("A") @ var("A"))
        adaptive = Evaluator(instance)
        assert adaptive.backend is None  # deferred to physical planning
        pinned = Evaluator(instance, backend="dense")
        assert pinned.backend is not None
        assert np.array_equal(adaptive.run(expression), pinned.run(expression))

    def test_explain_reports_all_three_stages(self):
        instance = self._sparse_instance()
        plan = compile_expression(
            ssum("_v", var("A") @ (var("A") @ var("_v"))), instance.schema
        )
        report = plan.explain(instance=instance)
        assert "plan:" in report
        assert "logical optimizer:" in report
        assert "physical plan:" in report
        for note in plan.notes:
            assert note in report

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy required for sparse")
    def test_compiled_workload_adaptive_selection(self):
        instance = self._sparse_instance()
        workload = CompiledWorkload(var("A") @ var("A"), instance.schema)
        assert workload.adaptive
        assert workload.physical(instance).backend.name == "sparse"
        pinned = CompiledWorkload(var("A") @ var("A"), instance.schema, backend="dense")
        assert not pinned.adaptive
        assert np.array_equal(workload.run(instance), pinned.run(instance))
