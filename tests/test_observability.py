"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers five concerns:

* **tracing primitives** — the clock anchor, sampling stride, per-thread
  ring overflow accounting, span context export/ingest (the pool's wire
  form), and both export formats (Chrome trace events, JSONL);
* **engine integration** — a traced single-process engine emits a full
  admission→queue→coalesce→dispatch→kernel→deliver span tree whose
  kernel-span names match the plan listing, and a pooled
  ``Engine(workers=2)`` run produces the same coverage for every sampled
  request with ship/worker hops in between (the PR's acceptance walk);
* **metrics registry** — the Prometheus exposition carries every
  :class:`EngineStatsSnapshot` field, worker labels, and trace counters,
  and erroring sources are isolated rather than failing the scrape;
* **serving protocol** — the ``metrics`` / ``worker_stats`` /
  ``hot_plans`` frames roundtrip through ``QueryServer``/``QueryClient``;
* **stats integrity** — wall-clock anchoring of snapshots, the
  N-thread submitted == completed + failed + shed ledger, and
  ``_percentile`` edge cases.
"""

import io
import json
import threading
import time
from collections import defaultdict
from dataclasses import fields as dataclass_fields

import numpy as np
import pytest

from repro.matlang.builder import ssum, var
from repro.matlang.compiler import compile_expression
from repro.matlang.functions import default_registry
from repro.matlang.instance import Instance
from repro.matlang.ir import execute_plan_batch
from repro.obs import (
    ClockAnchor,
    DashboardLoop,
    Metric,
    MetricsRegistry,
    OpSpanCollector,
    TraceContext,
    Tracer,
    engine_registry,
    render_dashboard,
    sparkline,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.trace import KERNEL, SERVING
from repro.semiring import MIN_PLUS, REAL
from repro.semiring.backends import BatchedDenseBackend
from repro.service import Engine, QueryClient, QueryServer
from repro.service.stats import EngineStats, EngineStatsSnapshot, _percentile

A = var("A")
V = var("v")
EXPR = ssum("_v", A @ V)

#: Pipeline stages every sampled request must cover (acceptance criterion).
PIPELINE_STAGES = {"admission", "queue", "dispatch", "deliver"}


def _instance(seed, size=8, semiring=REAL):
    rng = np.random.default_rng(seed)
    return Instance.from_matrices(
        {"A": rng.random((size, size)), "v": rng.random((size, 1))},
        semiring=semiring,
    )


def _span_tree(tracer):
    """Map trace_id -> {span name -> [Span, ...]} from the tracer's rings."""
    tree = defaultdict(lambda: defaultdict(list))
    for span in tracer.spans():
        tree[span.trace_id][span.name].append(span)
    return tree


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------
class TestClockAnchor:
    def test_epoch_monotonic_roundtrip(self):
        anchor = ClockAnchor()
        monotonic = anchor.monotonic + 1.25
        epoch = anchor.epoch_of(monotonic)
        assert epoch == pytest.approx(anchor.epoch + 1.25)
        assert anchor.monotonic_of(epoch) == pytest.approx(monotonic)

    def test_anchor_tracks_wall_clock(self):
        anchor = ClockAnchor()
        assert abs(anchor.now_epoch() - time.time()) < 1.0


class TestTracerSampling:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.start("q") is not None for _ in range(10))
        assert tracer.started == 10

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.start("q") is None for _ in range(10))

    def test_fractional_rate_uses_deterministic_stride(self):
        tracer = Tracer(sample_rate=0.25)
        sampled = [tracer.start("q") is not None for _ in range(12)]
        assert sum(sampled) == 3  # every 4th attempt
        assert sampled[0]  # stride sampling starts on the first request

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_ring_overflow_counts_drops(self):
        tracer = Tracer(sample_rate=1.0, capacity=4)
        for index in range(8):
            context = tracer.begin(f"q{index}")
            context.add("stage", SERVING, time.time(), 0.0)
            tracer.finish(context)
        assert len(tracer.spans()) == 4
        assert tracer.dropped == 4
        assert tracer.finished == 8

    def test_clear_resets_rings_and_counters(self):
        tracer = Tracer(sample_rate=1.0)
        context = tracer.begin("q")
        context.add("stage", SERVING, time.time(), 0.0)
        tracer.finish(context)
        assert tracer.spans()
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.started == 0
        assert tracer.dropped == 0


class TestTraceContext:
    def test_span_contextmanager_times_the_block(self):
        context = TraceContext(7, "label")
        with context.span("stage", note="x"):
            time.sleep(0.01)
        ((name, category, start, duration, _pid, _tid, args),) = context.spans
        assert name == "stage"
        assert category == SERVING
        assert duration >= 0.009
        assert abs(start - time.time()) < 5.0
        assert args == {"note": "x"}

    def test_export_ingest_roundtrip(self):
        source = TraceContext(3, "plan")
        source.add("queue", SERVING, 100.0, 0.5, {"depth": 2})
        state = source.export_state()
        sink = TraceContext(3, "plan")
        sink.ingest_state(state)
        assert sink.spans == list(source.spans)

    def test_exported_state_survives_pickle(self):
        import pickle

        source = TraceContext(3, "plan")
        source.add("worker", SERVING, 100.0, 0.5)
        state = pickle.loads(pickle.dumps(source.export_state()))
        sink = TraceContext(3, "plan")
        sink.ingest_state(state)
        assert sink.spans == list(source.spans)


class TestExports:
    def _populated_tracer(self):
        tracer = Tracer(sample_rate=1.0)
        context = tracer.begin("sum _v. A * v")
        now = time.time()
        context.add("queue", SERVING, now, 0.001)
        context.add("r2 matmul", KERNEL, now + 0.001, 0.002, {"backend": "dense"})
        tracer.finish(context)
        return tracer

    def test_chrome_export_is_loadable_complete_events(self, tmp_path):
        tracer = self._populated_tracer()
        path = tmp_path / "trace.json"
        count = tracer.export_chrome(str(path))
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert count == len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            # Timestamps are µs on the epoch axis (not a perf_counter zero).
            assert event["ts"] > 1e14
            assert event["dur"] >= 0
            assert event["args"]["trace_id"] == 1
        categories = {event["cat"] for event in events}
        assert categories == {SERVING, KERNEL}

    def test_jsonl_export_parses_line_by_line(self, tmp_path):
        tracer = self._populated_tracer()
        path = tmp_path / "spans.jsonl"
        count = tracer.export_jsonl(str(path))
        lines = [line for line in path.read_text().splitlines() if line]
        assert count == len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {record["name"] for record in records} == {"queue", "r2 matmul"}
        assert all(record["trace_id"] == 1 for record in records)

    def test_hot_plans_aggregates_kernel_time_by_label(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(3):
            context = tracer.begin("hot-plan")
            context.add("r0 load", KERNEL, time.time(), 0.010)
            tracer.finish(context)
        context = tracer.begin("cool-plan")
        context.add("r0 load", KERNEL, time.time(), 0.001)
        tracer.finish(context)
        ranked = tracer.hot_plans(top=2)
        assert [entry["plan"] for entry in ranked] == ["hot-plan", "cool-plan"]
        assert ranked[0]["count"] == 3
        assert ranked[0]["seconds"] == pytest.approx(0.030)
        assert ranked[0]["ops"][0]["op"] == "r0 load"


class TestOpSpanCollector:
    @staticmethod
    def _run_batch(instances, collector):
        plan = compile_expression(EXPR, instances[0].schema)
        backend = BatchedDenseBackend(instances[0].semiring, len(instances))
        execute_plan_batch(
            plan, backend, instances, default_registry(), profiler=collector
        )
        return plan

    def test_execute_plan_batch_reports_per_op_timings(self):
        collector = OpSpanCollector()
        plan = self._run_batch([_instance(0), _instance(1)], collector)
        names = [name for name, *_ in collector.spans]
        listing = plan.describe()
        assert names  # one span per executed op
        for name in names:
            register, opcode = name.split(" ", 1)
            assert f"{register} = {opcode}(" in listing
        assert all(seconds >= 0 for *_, seconds in collector.spans)

    def test_forwarding_preserves_the_profiler_protocol(self):
        seen = []

        class Recorder:
            def record(self, op, backend_name, values, seconds):
                seen.append((op.opcode, backend_name, seconds))

        collector = OpSpanCollector(forward=Recorder())
        self._run_batch([_instance(0)], collector)
        assert seen
        assert len(seen) == len(collector.spans)

    def test_attach_marks_spans_as_kernel_category(self):
        collector = OpSpanCollector()
        self._run_batch([_instance(0)], collector)
        context = TraceContext(1, "plan")
        collector.attach(context, batch=4)
        assert len(context.spans) == len(collector.spans)
        for _name, category, _start, _duration, _pid, _tid, args in context.spans:
            assert category == KERNEL
            assert args["batch"] == 4


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestTracedEngine:
    def test_single_process_span_tree_covers_the_pipeline(self):
        tracer = Tracer(sample_rate=1.0)
        with Engine(trace=tracer) as engine:
            futures = [engine.submit(EXPR, _instance(seed)) for seed in range(5)]
            for future in futures:
                future.result(10.0)
        tree = _span_tree(tracer)
        assert len(tree) == 5
        for stages in tree.values():
            assert PIPELINE_STAGES <= set(stages)
            kernel_names = {
                name
                for name, spans in stages.items()
                if any(span.category == KERNEL for span in spans)
            }
            assert kernel_names  # per-op kernel spans present

    def test_kernel_span_names_match_the_plan_listing(self):
        tracer = Tracer(sample_rate=1.0)
        instance = _instance(0)
        listing = compile_expression(EXPR, instance.schema).describe()
        with Engine(trace=tracer) as engine:
            engine.submit(EXPR, instance).result(10.0)
        kernel_names = {
            span.name for span in tracer.spans() if span.category == KERNEL
        }
        assert kernel_names
        for name in kernel_names:
            register, opcode = name.split(" ", 1)
            assert f"{register} = {opcode}(" in listing

    def test_sampled_out_requests_carry_no_context(self):
        tracer = Tracer(sample_rate=0.0)
        with Engine(trace=tracer) as engine:
            engine.submit(EXPR, _instance(0)).result(10.0)
        assert tracer.spans() == []

    def test_failed_request_is_finished_with_error_marker(self):
        tracer = Tracer(sample_rate=1.0)
        bad = ssum("_v", var("missing") @ V)
        with Engine(trace=tracer) as engine:
            future = engine.submit(bad, _instance(0))
            with pytest.raises(Exception):
                future.result(10.0)
        assert tracer.finished >= 1

    def test_trace_spans_order_within_a_request(self):
        tracer = Tracer(sample_rate=1.0)
        with Engine(trace=tracer) as engine:
            engine.submit(EXPR, _instance(0)).result(10.0)
        ((_trace_id, stages),) = list(_span_tree(tracer).items())
        admission = stages["admission"][0]
        queue = stages["queue"][0]
        dispatch = stages["dispatch"][0]
        deliver = stages["deliver"][0]
        assert admission.start <= queue.start
        assert queue.start <= dispatch.start + 1e-6
        assert dispatch.start <= deliver.start + 1e-6

    def test_pooled_engine_span_tree_acceptance_walk(self):
        """Acceptance: every sampled pooled request covers the full path."""
        tracer = Tracer(sample_rate=1.0)
        with Engine(workers=2, trace=tracer) as engine:
            futures = [
                engine.submit(
                    EXPR, _instance(seed, semiring=(REAL, MIN_PLUS)[seed % 2])
                )
                for seed in range(8)
            ]
            for future in futures:
                future.result(60.0)
        tree = _span_tree(tracer)
        assert len(tree) == 8
        for stages in tree.values():
            # Router-side stages plus the shm/pipe hop...
            assert PIPELINE_STAGES | {"ship", "worker"} <= set(stages)
            # ...and worker-side kernel spans shipped back over the wire.
            kernel_spans = [
                span
                for spans in stages.values()
                for span in spans
                if span.category == KERNEL
            ]
            assert kernel_spans
            # Worker spans land on the same wall-clock axis as the router's:
            # each kernel span falls inside the request's serving window.
            window_start = stages["admission"][0].start
            window_end = stages["deliver"][0].end
            for span in kernel_spans:
                assert window_start - 0.5 <= span.start <= window_end + 0.5


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_prometheus_covers_every_engine_stats_field(self):
        with Engine() as engine:
            engine.submit(EXPR, _instance(0)).result(10.0)
            text = engine_registry(engine).prometheus()
        for field in dataclass_fields(EngineStatsSnapshot):
            assert f"repro_engine_{field.name}" in text, field.name

    def test_counters_get_total_suffix_and_type_lines(self):
        with Engine() as engine:
            text = engine_registry(engine).prometheus()
        assert "# TYPE repro_engine_submitted_total counter" in text
        assert "repro_engine_queue_depth " in text  # gauges keep their name
        assert "# HELP repro_engine_submitted_total" in text

    def test_worker_metrics_carry_worker_labels(self):
        tracer = Tracer(sample_rate=1.0)
        with Engine(workers=2, trace=tracer) as engine:
            engine.submit(EXPR, _instance(0)).result(60.0)
            text = engine_registry(engine).prometheus()
        assert 'repro_worker_up{worker="0"} 1' in text
        assert 'repro_worker_up{worker="1"} 1' in text
        assert 'repro_worker_submitted_total{worker="0"}' in text
        assert "repro_trace_started_total" in text
        assert "repro_trace_sample_rate" in text

    def test_erroring_source_is_isolated_not_fatal(self):
        registry = MetricsRegistry()
        registry.register("good", lambda: [Metric("up", 1.0)])

        def explode():
            raise RuntimeError("scrape failed")

        registry.register("bad", explode)
        text = registry.prometheus()
        assert "up 1" in text
        assert "bad" in registry.errors
        assert "RuntimeError" in registry.errors["bad"]
        assert "scrape failed" in registry.errors["bad"]

    def test_label_escaping_and_none_rendering(self):
        registry = MetricsRegistry()
        registry.register(
            "source",
            lambda: [
                Metric("weird", None, labels=(("plan", 'a"b\\c\nd'),)),
            ],
        )
        text = registry.prometheus()
        assert 'plan="a\\"b\\\\c\\nd"' in text
        assert "NaN" in text

    def test_tree_nests_by_name_segments(self):
        registry = MetricsRegistry()
        registry.register(
            "engine",
            lambda: [
                Metric("repro_engine_submitted", 3.0),
                Metric("repro_engine_queue_depth", 1.0),
            ],
        )
        tree = registry.tree()
        assert tree["repro"]["engine"]["submitted"] == 3.0
        assert tree["repro"]["engine"]["queue"]["depth"] == 1.0


# ----------------------------------------------------------------------
# Serving protocol frames
# ----------------------------------------------------------------------
class TestServerFrames:
    def test_metrics_worker_stats_and_hot_plans_roundtrip(self):
        tracer = Tracer(sample_rate=1.0)
        with Engine(workers=2, trace=tracer) as engine:
            with QueryServer(engine) as server:
                host, port = server.address
                with QueryClient(host, port) as client:
                    for seed in range(4):
                        client.query(EXPR, _instance(seed))
                    text = client.metrics()
                    workers = client.worker_stats()
                    hot = client.hot_plans(3)
        assert "repro_engine_submitted_total" in text
        assert len(workers) == 2
        assert all(worker is not None for worker in workers)
        assert hot and hot[0]["ops"]

    def test_hot_plans_empty_without_a_tracer(self):
        with Engine() as engine:
            with QueryServer(engine) as server:
                host, port = server.address
                with QueryClient(host, port) as client:
                    assert client.hot_plans() == []
                    assert client.worker_stats() == []


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
class TestDashboard:
    def _snapshot(self, engine):
        return engine.stats()

    def test_render_contains_the_headline_numbers(self):
        tracer = Tracer(sample_rate=1.0)
        with Engine(trace=tracer) as engine:
            for seed in range(3):
                engine.submit(EXPR, _instance(seed)).result(10.0)
            frame = render_dashboard(
                engine.stats(), hot_plans=tracer.hot_plans(2)
            )
        assert "throughput" in frame
        assert "queue depth" in frame
        assert "submitted" in frame
        assert "sum _v. A * v" in frame  # hottest plan label

    def test_render_marks_dead_workers(self):
        with Engine() as engine:
            frame = render_dashboard(engine.stats(), workers=[None])
        assert "DOWN" in frame

    def test_sparkline_maps_extremes_to_extreme_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert sparkline([], width=4) == ""

    def test_dashboard_loop_renders_requested_frames(self):
        with Engine() as engine:
            stream = io.StringIO()
            loop = DashboardLoop(
                lambda: {"stats": engine.stats()},
                interval=0.01,
                frames=3,
                stream=stream,
                clear=False,
            )
            assert loop.run() == 3
        assert stream.getvalue().count("throughput") == 3


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_demo_exports_all_three_formats(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        prom = tmp_path / "metrics.prom"
        code = obs_main(
            [
                "demo",
                "--requests",
                "12",
                "--workers",
                "0",
                "--chrome-out",
                str(chrome),
                "--jsonl-out",
                str(jsonl),
                "--metrics-out",
                str(prom),
            ]
        )
        assert code == 0
        data = json.loads(chrome.read_text())
        assert data["traceEvents"]
        assert all(json.loads(line) for line in jsonl.read_text().splitlines())
        assert "repro_engine_submitted_total" in prom.read_text()
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "traces: 12 finished" in out

    def test_stats_command_against_a_live_server(self, capsys):
        with Engine() as engine:
            engine.submit(EXPR, _instance(0)).result(10.0)
            with QueryServer(engine) as server:
                host, port = server.address
                code = obs_main(["stats", "--host", host, "--port", str(port)])
        assert code == 0
        assert "served=" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Stats integrity
# ----------------------------------------------------------------------
class TestStatsIntegrity:
    def test_snapshot_is_anchored_to_wall_clock(self):
        stats = EngineStats()
        before = time.time()
        time.sleep(0.02)
        snapshot = stats.snapshot()
        after = time.time()
        assert before - 1.0 <= snapshot.started_epoch <= after
        assert snapshot.started_epoch <= snapshot.snapshot_epoch <= after + 1.0
        assert snapshot.uptime_seconds >= 0.02
        assert snapshot.uptime_seconds == pytest.approx(
            snapshot.snapshot_epoch - snapshot.started_epoch, abs=0.05
        )

    def test_engine_snapshot_carries_the_anchor(self):
        with Engine() as engine:
            snapshot = engine.stats()
        assert snapshot.started_epoch > 1e9  # a real epoch, not perf_counter
        assert snapshot.uptime_seconds >= 0.0

    def test_percentile_single_sample(self):
        assert _percentile((5.0,), 0.50) == 5.0
        assert _percentile((5.0,), 0.95) == 5.0

    def test_percentile_all_equal_reservoir(self):
        ordered = (2.0,) * 7
        assert _percentile(ordered, 0.50) == 2.0
        assert _percentile(ordered, 0.95) == 2.0

    def test_percentile_never_overruns_the_reservoir(self):
        ordered = tuple(float(value) for value in range(10))
        assert _percentile(ordered, 1.0) == 9.0
        assert _percentile(ordered, 0.0) == 0.0

    def test_empty_reservoir_reports_none_percentiles(self):
        snapshot = EngineStats().snapshot()
        assert snapshot.latency_p50 is None
        assert snapshot.latency_p95 is None

    def test_threaded_ledger_conservation(self):
        """submitted == completed + failed + queue_depth under N threads."""
        stats = EngineStats()
        threads = 8
        per_thread = 200
        barrier = threading.Barrier(threads)

        def hammer(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(per_thread):
                stats.record_submitted()
                stats.record_dequeued(1)
                stats.record_done(0.001, failed=bool(rng.integers(0, 4) == 0))

        workers = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        snapshot = stats.snapshot()
        assert snapshot.submitted == threads * per_thread
        assert snapshot.completed + snapshot.failed == threads * per_thread
        assert snapshot.queue_depth == 0

    def test_engine_ledger_under_concurrent_submitters(self):
        with Engine() as engine:
            threads = 4
            per_thread = 10
            barrier = threading.Barrier(threads)
            errors = []

            def submitter(base):
                try:
                    barrier.wait()
                    futures = [
                        engine.submit(EXPR, _instance(base * per_thread + index))
                        for index in range(per_thread)
                    ]
                    for future in futures:
                        future.result(30.0)
                except Exception as error:  # pragma: no cover - diagnostic
                    errors.append(error)

            workers = [
                threading.Thread(target=submitter, args=(base,))
                for base in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            snapshot = engine.stats()
        assert not errors
        total = threads * per_thread
        assert snapshot.submitted == total
        shed = snapshot.shed_expired + snapshot.shed_overload
        assert snapshot.completed + snapshot.failed + shed == total
        assert snapshot.queue_depth == 0
