"""Per-op physical planning, conversion ops, and measured-cost feedback.

Covers the PR-6 pipeline end to end:

* **per-op assignment** — :func:`repro.semiring.backends.plan_physical`
  tags each plan op with a backend and inserts explicit ``to_dense`` /
  ``to_sparse`` conversion ops at representation boundaries, while uniform
  outcomes return the *original* plan object so identity-keyed caches and
  batch grouping keep working;
* **mixed-execution equivalence** — a sparse-prefix/dense-epilogue plan is
  entrywise identical to pinned pure-dense execution across every
  registered semiring, conversion ops round-trip exactly, and the int64
  overflow discipline (exact-fold fallback, carrier check) survives inside
  a tagged, conversion-carrying plan;
* **profile feedback** — profile updates bump the generation, which
  invalidates the compiler's plan cache and every physical-plan cache, a
  calibrated profile can flip planning decisions, and the execution
  profiler fits observed timings back into a profile;
* **calibration CLI** — ``python -m repro.calibrate`` runs the sweep,
  writes the JSON profile, and the written profile auto-loads;
* **ragged serving** — ``CoalescingPolicy(ragged=True)`` merges near-miss
  dimension groups into zero-padded batches with results sliced back to
  true shape, matching sequential evaluation.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exceptions import EvaluationError, SemiringError
from repro.matlang.builder import prod, var
from repro.matlang.compiler import clear_plan_cache, compile_expression
from repro.matlang.evaluator import Evaluator, evaluate
from repro.matlang.functions import default_registry
from repro.matlang.instance import Instance
from repro.matlang.ir import Plan, execute_plan, execute_plan_batch
from repro.profile import (
    DEFAULT_PROFILE,
    CostProfile,
    ExecutionProfiler,
    active_profile,
    profile_generation,
    set_active_profile,
)
from repro.profile.calibration import main as calibrate_main
from repro.profile.calibration import run_calibration
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.backends import backend_for, plan_physical
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.service import CoalescingPolicy, Engine
from repro.service.batching import QueryFuture, QueryRequest, coalesce

try:
    import scipy.sparse  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    HAVE_SCIPY = False

needs_scipy = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")

ALL_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]

#: The canonical mixed workload: a sparse-friendly reachability prefix
#: (iterated product over a sparse adjacency matrix) feeding a dense
#: epilogue (sum and product against dense matrices).
MIXED_EXPRESSION = (prod("_v", var("A")) + var("D")) @ var("E")


@pytest.fixture(autouse=True)
def _restore_profile():
    """Tests here install profiles; always restore the built-in default."""
    yield
    set_active_profile(DEFAULT_PROFILE)


def _cycles_matrix(size: int, cycle: int = 8) -> np.ndarray:
    """Disjoint ``cycle``-cycles: sparse, with structured iterated products."""
    adjacency = np.zeros((size, size), dtype=bool)
    for start in range(0, size - cycle + 1, cycle):
        for offset in range(cycle):
            adjacency[start + offset, start + (offset + 1) % cycle] = True
    return adjacency


def _mixed_instance(semiring, size: int, seed: int = 0) -> Instance:
    """An instance with a sparse ``A`` and dense ``D`` / ``E``."""
    rng = np.random.default_rng(seed)
    sparse_mask = _cycles_matrix(size)
    dense_mask_d = rng.random((size, size)) < 0.9
    dense_mask_e = rng.random((size, size)) < 0.9
    if semiring.name == "boolean":
        matrices = {"A": sparse_mask, "D": dense_mask_d, "E": dense_mask_e}
    elif semiring.name in ("natural", "integer"):
        matrices = {
            "A": sparse_mask.astype(np.int64),
            "D": dense_mask_d.astype(np.int64),
            "E": dense_mask_e.astype(np.int64),
        }
    elif semiring.name in ("min_plus", "max_plus"):
        weights = np.round(rng.random((size, size)) * 9, 3)
        zero = semiring.zero

        def weighted(mask):
            matrix = np.full((size, size), zero)
            matrix[mask] = weights[mask]
            return matrix

        matrices = {
            "A": weighted(sparse_mask),
            "D": weighted(dense_mask_d),
            "E": weighted(dense_mask_e),
        }
    elif semiring.name == "provenance":

        def tagged(mask, label):
            matrix = np.empty((size, size), dtype=object)
            for i in range(size):
                for j in range(size):
                    matrix[i, j] = (
                        Polynomial.variable(f"{label}_{i}_{j}") if mask[i, j] else 0
                    )
            return matrix

        matrices = {
            "A": tagged(sparse_mask, "a"),
            "D": tagged(dense_mask_d, "d"),
            "E": tagged(dense_mask_e, "e"),
        }
    else:
        values = rng.standard_normal((size, size))
        matrices = {
            "A": np.where(sparse_mask, values, 0.0),
            "D": np.where(dense_mask_d, values, 0.0),
            "E": np.where(dense_mask_e, values, 0.0),
        }
    return Instance.from_matrices(matrices, semiring=semiring)


def _entrywise_equal(left, right) -> bool:
    left = np.asarray(left)
    right = np.asarray(right)
    if left.shape != right.shape:
        return False
    if left.dtype == object or right.dtype == object:
        return all(left[index] == right[index] for index in np.ndindex(left.shape))
    return bool(np.array_equal(left, right))


# ----------------------------------------------------------------------
# Per-op assignment
# ----------------------------------------------------------------------
@needs_scipy
class TestPerOpAssignment:
    def test_mixed_plan_tags_ops_and_inserts_conversions(self):
        instance = _mixed_instance(BOOLEAN, 128)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        physical = plan_physical(plan, instance, None)
        assert physical.mixed
        # mixed CSR/dense plans batch since the block-diagonal lane landed
        assert physical.batchable
        assert physical.batch_mode == "mixed"
        assert set(physical.backends) == {"dense", "sparse"}
        tags = {op.backend for op in physical.plan.ops}
        assert tags == {"dense", "sparse"}
        conversions = [
            op for op in physical.plan.ops if op.opcode in ("to_dense", "to_sparse")
        ]
        assert conversions, "a mixed plan must carry explicit conversion ops"
        assert any("per-op physical planning" in note for note in physical.notes)
        assert any("conversion" in note for note in physical.notes)

    def test_closure_fill_in_flips_moderately_dense_power_to_dense(self):
        # A closure (power op) over a moderately dense matrix fills in to
        # dense within a squaring or two; the per-step density ladder must
        # surface that blowup instead of costing every step at the input
        # density, which under-costed sparse and picked it anyway.
        rng = np.random.default_rng(0)
        instance = Instance.from_matrices(
            {"A": rng.random((256, 256)) < 0.1}, semiring=BOOLEAN
        )
        plan = compile_expression(prod("_v", var("A")), instance.schema)
        physical = plan_physical(plan, instance, None)
        assert not physical.mixed
        assert physical.default_tag == "dense"

    def test_closure_fill_in_keeps_permutation_structured_power_sparse(self):
        # A one-entry-per-row matrix sits at the ``d * n == 1`` fixed point
        # of the fill rule: squaring never fills it in, so the ladder must
        # keep the closure on the sparse backend.
        instance = Instance.from_matrices(
            {"A": _cycles_matrix(256)}, semiring=BOOLEAN
        )
        plan = compile_expression(prod("_v", var("A")), instance.schema)
        physical = plan_physical(plan, instance, None)
        assert not physical.mixed
        assert physical.default_tag == "sparse"

    def test_closure_fill_in_keeps_reflexive_cycles_sparse(self):
        # A reflexive closure input (cycles + I, density 2/n) carries a
        # one-entry-per-row backbone on top of the permutation; the fill
        # rule must discount that backbone before squaring — diagonal and
        # permutation structure composes to more structure, not to
        # quadratic fill — or the ladder misreads branching factor 2 and
        # saturates a closure that genuinely stays sparse.
        adjacency = _cycles_matrix(256) | np.eye(256, dtype=bool)
        instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        plan = compile_expression(prod("_v", var("A")), instance.schema)
        physical = plan_physical(plan, instance, None)
        assert not physical.mixed
        assert physical.default_tag == "sparse"

    def test_uniform_outcome_returns_the_original_plan_object(self):
        # Dense instance: everything lands dense, and the planner hands the
        # caller's plan object back untouched (identity-keyed caches rely on
        # this).
        rng = np.random.default_rng(1)
        dense = Instance.from_matrices(
            {"A": rng.random((96, 96)) < 0.7}, semiring=BOOLEAN
        )
        plan = compile_expression(var("A") @ var("A"), dense.schema)
        physical = plan_physical(plan, dense, None)
        assert physical.plan is plan
        assert not physical.mixed
        assert physical.backend.name == "dense"

        # Uniformly sparse: same object-identity contract, sparse default.
        sparse = Instance.from_matrices(
            {"A": _cycles_matrix(256)}, semiring=BOOLEAN
        )
        physical = plan_physical(plan, sparse, None)
        assert physical.plan is plan
        assert not physical.mixed
        assert physical.backend.name == "sparse"

    def test_pinned_backend_short_circuits(self):
        instance = _mixed_instance(BOOLEAN, 128)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        physical = plan_physical(plan, instance, "dense")
        assert physical.plan is plan
        assert physical.backend.name == "dense"
        assert any("pinned by the caller" in note for note in physical.notes)

    def test_batch_executor_requires_backend_map_for_tagged_plans(self):
        instance = _mixed_instance(BOOLEAN, 128)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        physical = plan_physical(plan, instance, None)
        assert physical.mixed
        from repro.semiring.backends import BatchedDenseBackend

        backend = BatchedDenseBackend(BOOLEAN, 2)
        with pytest.raises(EvaluationError, match="backend map"):
            execute_plan_batch(
                physical.plan, backend, [instance, instance], default_registry()
            )
        # With the matching batched backend map the mixed plan executes on
        # the whole batch, conversions included, and matches per-instance.
        backends = physical.batched_backends(2)
        value = execute_plan_batch(
            physical.plan,
            backends[physical.default_tag],
            [instance, instance],
            default_registry(),
            backends=backends,
        )
        result_tag = physical.plan.ops[physical.plan.result].backend
        stacked = backends[result_tag or physical.default_tag].to_dense(value)
        want = evaluate(MIXED_EXPRESSION, instance)
        assert _entrywise_equal(stacked[0], want)
        assert _entrywise_equal(stacked[1], want)

    def test_explain_reports_assignments_and_conversions(self):
        instance = _mixed_instance(BOOLEAN, 128)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        report = plan.explain(instance=instance)
        assert "physical plan:" in report
        assert "(inserted conversion)" in report
        assert ": sparse" in report
        assert ": dense" in report
        assert "per-op physical planning" in report


# ----------------------------------------------------------------------
# Mixed-execution equivalence
# ----------------------------------------------------------------------
class TestMixedExecutionEquivalence:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_adaptive_matches_pinned_dense(self, semiring):
        # Provenance polynomials make 128^3 object matmuls prohibitively
        # slow; the adaptive plan is dense there anyway (not sparse-capable),
        # so a small instance exercises the same code path.
        size = 16 if semiring.name == "provenance" else 128
        instance = _mixed_instance(semiring, size)
        adaptive = evaluate(MIXED_EXPRESSION, instance)
        pinned = Evaluator(instance, backend="dense").run(MIXED_EXPRESSION)
        assert _entrywise_equal(adaptive, pinned)

    @needs_scipy
    @pytest.mark.parametrize(
        "semiring", [BOOLEAN, MIN_PLUS, MAX_PLUS], ids=lambda s: s.name
    )
    def test_sparse_capable_semirings_actually_mix(self, semiring):
        instance = _mixed_instance(semiring, 128)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        physical = plan_physical(plan, instance, None)
        assert physical.mixed, (
            f"the {semiring.name} sparse-prefix/dense-epilogue workload "
            "should split across backends"
        )

    @needs_scipy
    def test_conversion_round_trip_is_exact(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((64, 64)) < 0.2
        dense = backend_for(BOOLEAN, "dense")
        sparse = backend_for(BOOLEAN, "sparse")
        # backend-level round trips
        assert _entrywise_equal(
            dense.to_dense(dense.from_dense(sparse.to_dense(sparse.from_dense(matrix)))),
            matrix,
        )
        # plan-level: a to_sparse / to_dense pair around a load is identity
        instance = Instance.from_matrices({"A": matrix}, semiring=BOOLEAN)
        typed = ("n", "n")
        plan = Plan(
            ops=(
                dataclasses.replace(
                    compile_expression(var("A"), instance.schema).ops[0],
                    backend="dense",
                ),
                # dense -> sparse
                type(compile_expression(var("A"), instance.schema).ops[0])(
                    opcode="to_sparse", inputs=(0,), type=typed,
                    name="dense", backend="sparse",
                ),
                # sparse -> dense
                type(compile_expression(var("A"), instance.schema).ops[0])(
                    opcode="to_dense", inputs=(1,), type=typed,
                    name="sparse", backend="dense",
                ),
            ),
            result=2,
        )
        value = execute_plan(
            plan,
            dense,
            instance,
            default_registry(),
            backends={"dense": dense, "sparse": sparse},
        )
        assert _entrywise_equal(dense.to_dense(value), matrix)

    def test_overflow_fallback_inside_a_tagged_plan(self):
        # inner * max^2 overflows the a-priori int64 bound, so the natural
        # kernel must take its exact-fold fallback — inside a plan running
        # through the per-op dispatch machinery (tags + a conversion op).
        matrix = np.zeros((4, 4), dtype=np.int64)
        np.fill_diagonal(matrix, 2**31)
        instance = Instance.from_matrices({"A": matrix}, semiring=NATURAL)
        plan = compile_expression(var("A") @ var("A"), instance.schema)
        dense = backend_for(NATURAL, "dense")
        tagged_ops = [dataclasses.replace(op, backend="dense") for op in plan.ops]
        # splice a dense->dense conversion (a degenerate but legal boundary)
        # between the loads and the matmul, remapping the matmul's inputs
        load_count = len(tagged_ops) - 1
        conversion = dataclasses.replace(
            tagged_ops[0],
            opcode="to_dense",
            inputs=(0,),
            name="dense",
            backend="dense",
            value=None,
        )
        matmul = tagged_ops[-1]
        remapped = dataclasses.replace(
            matmul,
            inputs=tuple(
                load_count if register == 0 else register
                for register in matmul.inputs
            ),
        )
        mixed_plan = Plan(
            ops=tuple(tagged_ops[:-1]) + (conversion, remapped),
            result=load_count + 1,
        )
        value = execute_plan(
            mixed_plan, dense, instance, default_registry(),
            backends={"dense": dense},
        )
        expected = matrix.astype(object) @ matrix.astype(object)
        assert _entrywise_equal(dense.to_dense(value), expected.astype(np.int64))

        # A result that does not fit int64 must still raise, not wrap.
        oversized = np.full((4, 4), 2**32, dtype=np.int64)
        poisoned = Instance.from_matrices({"A": oversized}, semiring=NATURAL)
        with pytest.raises(SemiringError):
            execute_plan(
                mixed_plan, dense, poisoned, default_registry(),
                backends={"dense": dense},
            )

    def test_missing_backend_tag_is_an_evaluation_error(self):
        instance = _mixed_instance(REAL, 16)
        plan = compile_expression(var("A") @ var("D"), instance.schema)
        tagged = Plan(
            ops=tuple(
                dataclasses.replace(op, backend="sparse") for op in plan.ops
            ),
            result=plan.result,
        )
        dense = backend_for(REAL, "dense")
        with pytest.raises(EvaluationError, match="backend map"):
            execute_plan(
                tagged, dense, instance, default_registry(),
                backends={"dense": dense},
            )


# ----------------------------------------------------------------------
# Profile feedback
# ----------------------------------------------------------------------
class TestProfileFeedback:
    def test_profile_update_invalidates_the_plan_cache(self):
        clear_plan_cache()
        schema = _mixed_instance(REAL, 8).schema
        first = compile_expression(MIXED_EXPRESSION, schema)
        assert compile_expression(MIXED_EXPRESSION, schema) is first
        set_active_profile(DEFAULT_PROFILE.bumped(source="test"))
        recompiled = compile_expression(MIXED_EXPRESSION, schema)
        assert recompiled is not first
        assert compile_expression(MIXED_EXPRESSION, schema) is recompiled

    def test_profile_update_replans_the_evaluator_cache(self):
        instance = _mixed_instance(REAL, 16)
        evaluator = Evaluator(instance)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        before = evaluator.physical(plan)
        assert evaluator.physical(plan) is before
        set_active_profile(DEFAULT_PROFILE.bumped(source="test"))
        after = evaluator.physical(plan)
        assert after is not before

    @needs_scipy
    def test_calibrated_profile_changes_a_planning_decision(self):
        instance = _mixed_instance(BOOLEAN, 128)
        plan = compile_expression(MIXED_EXPRESSION, instance.schema)
        default_physical = plan_physical(plan, instance, None)
        assert default_physical.mixed

        # A profile that measured sparse execution as ruinously slow must
        # drive the same workload fully dense.
        sparse_hostile = DEFAULT_PROFILE.bumped(
            source="calibrated",
            unit_costs={
                **DEFAULT_PROFILE.unit_costs,
                "sparse.matmul": 1e9,
                "sparse.elementwise": 1e9,
                "sparse.construct": 1e9,
            },
        )
        hostile_physical = plan_physical(plan, instance, None, profile=sparse_hostile)
        assert not hostile_physical.mixed
        assert hostile_physical.backend.name == "dense"
        assert hostile_physical.plan is plan

    def test_execution_profiler_fits_observed_timings(self):
        instance = _mixed_instance(REAL, 32)
        profiler = ExecutionProfiler()
        evaluator = Evaluator(instance, profiler=profiler)
        for _ in range(ExecutionProfiler.MIN_SAMPLES + 2):
            evaluator.run(MIXED_EXPRESSION)
        assert profiler.sample_count() > 0
        fitted = profiler.fit(base=DEFAULT_PROFILE)
        assert fitted.version > DEFAULT_PROFILE.version
        assert fitted.source == "fitted"
        assert fitted.unit_costs["dense.matmul"] > 0.0
        assert fitted.symbol_sizes  # observe_instance fed the EWMA

    def test_engine_profile_feedback_bumps_the_generation(self):
        instance = _mixed_instance(REAL, 24)
        generation = profile_generation()
        with Engine(
            profile_feedback=True, backend=backend_for(REAL, "dense")
        ) as engine:
            futures = engine.submit_many(
                (MIXED_EXPRESSION, instance) for _ in range(12)
            )
            for future in futures:
                future.result(30)
            assert engine._profiler.sample_count() > 0
        assert profile_generation() > generation
        assert active_profile().source == "fitted"


# ----------------------------------------------------------------------
# Calibration CLI
# ----------------------------------------------------------------------
class TestCalibration:
    def test_run_calibration_produces_a_usable_profile(self):
        profile = run_calibration(sizes=(16, 32), densities=(0.1, 0.6), repeats=1)
        assert isinstance(profile, CostProfile)
        assert profile.source == "calibrated"
        assert profile.unit_costs["dense.matmul"] > 0.0
        assert 0.0 < profile.sparse_max_density <= 0.6
        assert profile.sparse_min_dimension >= 1

    def test_cli_dry_run_prints_without_writing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_PATH", str(tmp_path / "profile.json"))
        assert calibrate_main(["--quick", "--repeats", "1", "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "calibrated cost profile" in output
        assert "dry run: profile not written" in output
        assert not (tmp_path / "profile.json").exists()

    def test_cli_writes_and_the_profile_auto_loads(self, tmp_path, monkeypatch):
        target = tmp_path / "profile.json"
        monkeypatch.setenv("REPRO_PROFILE_PATH", str(target))
        assert calibrate_main(["--quick", "--repeats", "1"]) == 0
        assert target.is_file()
        written = CostProfile.load(target)
        assert written.source == "calibrated"
        # Auto-load: a fresh process would pick the file up on first use.
        import repro.profile as profile_module

        monkeypatch.setattr(profile_module, "_ACTIVE", None)
        loaded = profile_module.active_profile()
        assert loaded.source == "calibrated"
        assert loaded.unit_costs == written.unit_costs


# ----------------------------------------------------------------------
# Ragged serving
# ----------------------------------------------------------------------
class TestRaggedServing:
    @staticmethod
    def _instance(size: int, seed: int) -> Instance:
        rng = np.random.default_rng(seed)
        return Instance.from_matrices(
            {"A": rng.random((size, size)), "B": rng.random((size, size))},
            semiring=REAL,
        )

    EXPRESSION = var("A") @ var("B") + var("A")

    def test_ragged_results_match_sequential(self):
        instances = [
            self._instance(size, seed)
            for seed, size in enumerate((15, 16, 17, 15, 16, 17, 40))
        ]
        expected = [evaluate(self.EXPRESSION, inst) for inst in instances]
        with Engine(policy=CoalescingPolicy(max_delay=0.05, ragged=True)) as engine:
            futures = engine.submit_many(
                (self.EXPRESSION, inst) for inst in instances
            )
            results = [future.result(30) for future in futures]
        for got, want in zip(results, expected):
            assert got.shape == want.shape
            assert np.array_equal(got, want)

    def test_merge_folds_near_miss_groups_and_pads(self):
        instances = [self._instance(size, size) for size in (15, 16, 17)]
        with Engine(policy=CoalescingPolicy(ragged=True)) as engine:
            plan = compile_expression(self.EXPRESSION, instances[0].schema)
            requests = [
                QueryRequest(plan, inst, QueryFuture(engine._result_condition), 0.0)
                for inst in instances
            ]
            for sequence, request in enumerate(requests):
                request.sequence = sequence
            groups = coalesce(list(requests))
            assert len(groups) == 3  # distinct dims: no plain coalescing
            merged = engine._merge_ragged_groups(groups)
            assert len(merged) == 1
            group = merged[0]
            assert [request.sequence for request in group.requests] == [0, 1, 2]
            for request in group.requests:
                assert request.execute_instance.dimension("alpha") == 17
            # the original instances are untouched
            for request, instance in zip(group.requests, instances):
                assert request.instance is instance

    def test_padding_unsafe_plans_never_merge(self):
        instance = _mixed_instance(REAL, 16)
        # prod(...) lowers to a loop op, which padding does not commute with
        plan = compile_expression(prod("_v", var("A")), instance.schema)
        with Engine(policy=CoalescingPolicy(ragged=True)) as engine:
            assert not engine._plan_padding_safe(plan)
            safe_plan = compile_expression(var("A") @ var("D"), instance.schema)
            assert engine._plan_padding_safe(safe_plan)


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------
@needs_scipy
class TestHarnessMixedPlans:
    def test_run_and_run_batch_match_evaluate_for_mixed_plans(self):
        from repro.experiments.harness import CompiledWorkload

        instances = [_mixed_instance(BOOLEAN, 128, seed) for seed in range(3)]
        workload = CompiledWorkload(MIXED_EXPRESSION, instances[0].schema)
        physical = workload.physical(instances[0])
        assert physical.mixed
        assert physical.batchable
        assert physical.batch_mode == "mixed"
        expected = [evaluate(MIXED_EXPRESSION, inst) for inst in instances]
        for instance, want in zip(instances, expected):
            assert _entrywise_equal(workload.run(instance), want)
        batch = workload.run_batch(instances)
        for got, want in zip(batch, expected):
            assert _entrywise_equal(got, want)
