"""Tests for the sharded multi-process serving tier (PR 7).

Covers the whole pooled stack and its satellites:

* **transport** — the single-producer/single-consumer shared-memory ring
  (roundtrips, wraparound, oversize refusal, timeout behaviour) and plan
  wire serialization (roundtrip identity, version rejection);
* **routing** — the shard router's determinism and group-identity keying;
* **memoization** — the bounded result memo (copy-out semantics, LRU and
  byte eviction, object-dtype refusal, profile-generation invalidation)
  and its engine integration (hit/miss/bytes telemetry, repeats resolving
  without execution, both pooled and single-process);
* **pooled correctness** — results bitwise-equal to sequential
  ``evaluate`` on every registered semiring, including the object-dtype
  pickle fallback;
* **worker lifecycle** — crash rescue (a killed worker's shard respawns
  and only its in-flight futures are touched), shutdown-vs-submit races
  resolving every future, and a ``/dev/shm`` sweep proving the suite
  leaks no segments;
* **front ends** — the asyncio bridge (``asubmit`` / ``asubmit_many``)
  and the length-prefixed socket protocol (queries, bursts, stats, error
  propagation, magic rejection);
* **profile plumbing** — worker profiler state draining/merging and the
  persistence policy (an under-sampled refit never reaches disk).
"""

import asyncio
import glob
import pickle
import socket
import threading
import time

import numpy as np
import pytest

from repro.matlang.builder import ssum, var
from repro.matlang.compiler import compile_expression
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.matlang.ir import (
    PLAN_WIRE_VERSION,
    deserialize_plan,
    serialize_plan,
)
from repro.exceptions import EvaluationError, SemiringError
from repro.profile import (
    DEFAULT_PROFILE,
    ExecutionProfiler,
    set_active_profile,
)
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.base import Semiring
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.service import (
    Engine,
    QueryClient,
    QueryServer,
    RemoteQueryError,
    ResultMemo,
    ShardRouter,
    WorkerCrashError,
)
from repro.service.shm import SEGMENT_PREFIX, ShmRing

ALL_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]


class _LateMaxMin(Semiring):
    """A module-level custom semiring (picklable by reference) that tests
    register *after* a worker pool has already forked."""

    name = "test_late_max_min"

    @property
    def zero(self):
        return 0.0

    @property
    def one(self):
        return float("inf")

    def plus(self, left, right):
        return max(left, right)

    def times(self, left, right):
        return min(left, right)

    def coerce(self, value):
        return float(value)


@pytest.fixture(autouse=True)
def _restore_profile():
    """Profile-feedback tests install profiles; restore the default after."""
    yield
    set_active_profile(DEFAULT_PROFILE)


def _matrix_for(semiring, size, seed):
    rng = np.random.default_rng(seed)
    if semiring.name == "boolean":
        return rng.random((size, size)) < 0.4
    if semiring.name == "natural":
        return rng.integers(0, 5, (size, size))
    if semiring.name == "integer":
        return rng.integers(-4, 5, (size, size))
    if semiring.name in ("min_plus", "max_plus"):
        return np.round(rng.random((size, size)) * 9, 3)
    if semiring.name == "provenance":
        matrix = np.empty((size, size), dtype=object)
        for i in range(size):
            for j in range(size):
                matrix[i, j] = (
                    Polynomial.variable(f"x{seed}_{i}_{j}") if rng.random() < 0.5 else 0
                )
        return matrix
    return rng.standard_normal((size, size))


def _instance_for(semiring, size, seed):
    return Instance.from_matrices(
        {"A": _matrix_for(semiring, size, seed)}, semiring=semiring
    )


def _entrywise_equal(left, right):
    if left.shape != right.shape:
        return False
    if left.dtype == object or right.dtype == object:
        return all(left[index] == right[index] for index in np.ndindex(left.shape))
    return bool(np.array_equal(left, right))


def _workload():
    return ssum("_v", var("A") @ var("_v"))


# ----------------------------------------------------------------------
# Plan wire serialization
# ----------------------------------------------------------------------
class TestPlanSerialization:
    def test_roundtrip_executes_identically(self):
        instance = _instance_for(REAL, 6, 0)
        expression = _workload()
        plan = compile_expression(expression, instance.schema)
        clone = deserialize_plan(serialize_plan(plan))
        assert clone is not plan
        assert len(clone.ops) == len(plan.ops)
        with Engine() as engine:
            via_clone = engine.submit_compiled(clone, instance).result(30)
        assert np.array_equal(via_clone, evaluate(expression, instance))

    def test_version_mismatch_rejected(self):
        payload = pickle.dumps((PLAN_WIRE_VERSION + 1, None))
        with pytest.raises(EvaluationError):
            deserialize_plan(payload)

    def test_garbage_rejected(self):
        with pytest.raises(EvaluationError):
            deserialize_plan(b"not a plan")


# ----------------------------------------------------------------------
# Shared-memory ring
# ----------------------------------------------------------------------
class TestShmRing:
    def test_roundtrip_and_wraparound(self):
        ring = ShmRing(capacity=64)
        try:
            # Several writes larger than half the capacity force the copy
            # to wrap; contents must survive byte-for-byte.
            for round_number in range(8):
                payload = bytes((round_number + i) % 256 for i in range(40))
                assert ring.write([payload])
                assert ring.read(len(payload)) == payload
        finally:
            ring.destroy()

    def test_multi_chunk_write_is_contiguous(self):
        ring = ShmRing(capacity=256)
        try:
            assert ring.write([b"abc", b"defg"])
            assert ring.read(7) == b"abcdefg"
        finally:
            ring.destroy()

    def test_oversized_payload_refused(self):
        ring = ShmRing(capacity=16)
        try:
            assert not ring.write([b"x" * 17])
            assert ring.used() == 0
        finally:
            ring.destroy()

    def test_full_ring_times_out_without_partial_write(self):
        ring = ShmRing(capacity=16)
        try:
            assert ring.write([b"a" * 12])
            assert not ring.write([b"b" * 8], timeout=0.05)
            assert ring.read(12) == b"a" * 12
            assert ring.write([b"b" * 8])
            assert ring.read(8) == b"b" * 8
        finally:
            ring.destroy()

    def test_read_of_unannounced_bytes_times_out(self):
        ring = ShmRing(capacity=16)
        try:
            with pytest.raises(TimeoutError):
                ring.read(4, timeout=0.05)
        finally:
            ring.destroy()

    def test_numpy_payloads_roundtrip(self):
        ring = ShmRing(capacity=4096)
        try:
            array = np.random.default_rng(0).standard_normal((8, 8))
            assert ring.write([np.ascontiguousarray(array).data])
            out = np.empty_like(array)
            ring.read_into(out.reshape(-1).view(np.uint8).data)
            assert np.array_equal(out, array)
        finally:
            ring.destroy()


# ----------------------------------------------------------------------
# Shard routing
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_deterministic_and_in_range(self):
        router = ShardRouter(4)
        shard = router.shard_for(7, "real", {"alpha": 64})
        for _ in range(5):
            assert router.shard_for(7, "real", {"alpha": 64}) == shard
        assert 0 <= shard < 4

    def test_distinct_identities_spread(self):
        router = ShardRouter(4)
        shards = {
            router.shard_for(plan_id, "real", {"alpha": 64}) for plan_id in range(64)
        }
        assert len(shards) > 1

    def test_dimension_signature_changes_shard_key(self):
        router = ShardRouter(1024)
        spread = {
            router.shard_for(1, "real", {"alpha": size}) for size in range(128)
        }
        assert len(spread) > 1


# ----------------------------------------------------------------------
# Result memo (unit level)
# ----------------------------------------------------------------------
class TestResultMemo:
    def test_hit_returns_a_private_copy(self):
        instance = _instance_for(REAL, 4, 0)
        plan = compile_expression(_workload(), instance.schema)
        memo = ResultMemo()
        key, hit = memo.lookup(plan, instance)
        assert key is not None and hit is None
        result = np.arange(4.0).reshape(4, 1)
        memo.store(key, plan, result)
        result[0, 0] = 99.0  # caller mutates after store: memo unaffected
        _, first = memo.lookup(plan, instance)
        assert first[0, 0] == 0.0
        first[1, 0] = -1.0  # mutating a hit must not corrupt the cache
        _, second = memo.lookup(plan, instance)
        assert second[1, 0] == 1.0

    def test_object_dtype_not_memoizable(self):
        instance = _instance_for(PROVENANCE, 3, 0)
        plan = compile_expression(_workload(), instance.schema)
        memo = ResultMemo()
        assert memo.lookup(plan, instance) == (None, None)

    def test_capacity_eviction_is_lru(self):
        plan = object.__new__(type("FakePlan", (), {}))
        memo = ResultMemo(capacity=2)
        keys = [(id(plan), bytes([n]), 0) for n in range(3)]
        for n, key in enumerate(keys):
            memo.store(key, plan, np.full((1, 1), float(n)))
        assert len(memo) == 2
        info = memo.info()
        assert info["entries"] == 2

    def test_byte_limit_eviction(self):
        plan = object.__new__(type("FakePlan", (), {}))
        memo = ResultMemo(capacity=64, byte_limit=1024)
        for n in range(8):
            memo.store((id(plan), bytes([n]), 0), plan, np.zeros((8, 8)))  # 512B each
        assert memo.bytes <= 1024

    def test_oversized_result_skipped(self):
        plan = object.__new__(type("FakePlan", (), {}))
        memo = ResultMemo(byte_limit=64)
        memo.store((id(plan), b"k", 0), plan, np.zeros((8, 8)))
        assert len(memo) == 0

    def test_profile_generation_invalidates_key(self):
        instance = _instance_for(REAL, 4, 0)
        plan = compile_expression(_workload(), instance.schema)
        memo = ResultMemo()
        key, _ = memo.lookup(plan, instance)
        memo.store(key, plan, np.zeros((4, 1)))
        set_active_profile(DEFAULT_PROFILE.bumped(source="test"))
        fresh_key, hit = memo.lookup(plan, instance)
        assert fresh_key != key
        assert hit is None


# ----------------------------------------------------------------------
# Pooled engine correctness
# ----------------------------------------------------------------------
class TestPooledResults:
    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_bitwise_equal_per_semiring(self, semiring):
        # Provenance rides the pickle fallback (object dtype); the rest go
        # through the shared-memory rings.
        expression = _workload()
        count = 4 if semiring.name == "provenance" else 10
        size = 3 if semiring.name == "provenance" else 6
        instances = [_instance_for(semiring, size, seed) for seed in range(count)]
        sequential = [evaluate(expression, instance) for instance in instances]
        with Engine(workers=2) as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            results = [future.result(60) for future in futures]
        for expected, actual in zip(sequential, results):
            assert _entrywise_equal(actual, expected), semiring.name

    def test_large_payload_falls_back_to_pipe(self):
        # A ring sized below the instance forces the pickle path end-to-end.
        expression = _workload()
        instance = _instance_for(REAL, 64, 3)  # 32KiB matrix
        with Engine(workers=1, ring_capacity=1024, memoize=False) as engine:
            result = engine.submit(expression, instance).result(60)
        assert np.array_equal(result, evaluate(expression, instance))

    def test_worker_decode_error_does_not_desync_the_ring(self, monkeypatch):
        # A worker-side failure *after* the parent has written the payload
        # bytes (here: the semiring lookup raising) must still drain the
        # announced bytes; a skipped payload used to desynchronize the ring
        # permanently, making every later shm submit on that worker read
        # the previous request's bytes as its matrices — silently wrong
        # results with no error.
        import repro.semiring.registry as registry

        real_lookup = registry.get_semiring

        def flaky_lookup(name):
            if name == "natural":
                raise SemiringError("natural is broken in this worker")
            return real_lookup(name)

        # Patched before the fork so the workers inherit the flaky lookup.
        monkeypatch.setattr(registry, "get_semiring", flaky_lookup)
        expression = _workload()
        poisoned = _instance_for(NATURAL, 6, 0)
        healthy = [_instance_for(REAL, 6, seed) for seed in range(1, 5)]
        expected = [evaluate(expression, instance) for instance in healthy]
        with Engine(workers=1, memoize=False) as engine:
            failed = engine.submit(expression, poisoned)
            assert isinstance(failed.exception(30), SemiringError)
            for instance, want in zip(healthy, expected):
                got = engine.submit(expression, instance).result(30)
                assert np.array_equal(got, want)

    def test_semiring_registered_after_pool_start_is_shipped(self):
        # The workers' fork-inherited registries predate the registration;
        # the parent must ship the semiring object so by-name resolution
        # works instead of failing every pooled request.
        from repro.semiring import register_semiring
        from repro.semiring.registry import _REGISTRY

        expression = _workload()
        with Engine(workers=2, memoize=False) as engine:
            semiring = _LateMaxMin()
            register_semiring(semiring)
            try:
                matrix = np.round(
                    np.random.default_rng(7).random((5, 5)) * 9 + 0.5, 3
                )
                instance = Instance.from_matrices({"A": matrix}, semiring=semiring)
                expected = evaluate(expression, instance)
                futures = [engine.submit(expression, instance) for _ in range(4)]
                for future in futures:
                    assert _entrywise_equal(future.result(60), expected)
            finally:
                _REGISTRY.pop(semiring.name, None)

    def test_compile_errors_surface_through_the_future(self):
        instance = _instance_for(REAL, 4, 0)
        with Engine(workers=1) as engine:
            future = engine.submit(var("NoSuchMatrix"), instance)
            assert future.exception(30) is not None

    def test_worker_stats_report_dispatch_detail(self):
        expression = _workload()
        instances = [_instance_for(REAL, 6, seed) for seed in range(12)]
        with Engine(workers=2, memoize=False) as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            for future in futures:
                future.result(30)
            per_worker = engine.worker_stats()
            router_view = engine.stats()
        assert len(per_worker) == 2
        served = sum(s.completed for s in per_worker if s is not None)
        assert served == len(instances)
        assert router_view.completed == len(instances)
        assert router_view.workers == 2

    def test_sparse_selected_stream_batches_in_workers(self):
        # Sparse boolean instances large enough for adaptive planning to
        # pick the sparse lane: the owning worker must coalesce them into
        # block-diagonal CSR batches (visible in its sparse telemetry), and
        # the results must stay bitwise-equal to sequential evaluation.
        pytest.importorskip("scipy.sparse")
        expression = (var("A") @ var("A")) @ var("A")
        rng = np.random.default_rng(11)
        instances = [
            Instance.from_matrices(
                {"A": (rng.random((64, 64)) < 0.04).astype(np.float64)},
                semiring=BOOLEAN,
            )
            for _ in range(12)
        ]
        sequential = [evaluate(expression, instance) for instance in instances]
        with Engine(workers=2, memoize=False) as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            results = [future.result(60) for future in futures]
            per_worker = engine.worker_stats()
        for expected, actual in zip(sequential, results):
            assert np.array_equal(actual, expected)
        sparse_batches = sum(
            s.sparse_batches for s in per_worker if s is not None
        )
        sparse_requests = sum(
            s.sparse_batched_requests for s in per_worker if s is not None
        )
        assert sparse_batches >= 1, "the sparse stream never hit the batched lane"
        assert sparse_requests >= 2
        batched_total = sum(
            s.batched_requests for s in per_worker if s is not None
        )
        assert sparse_requests <= batched_total

    def test_submit_compiled_is_worker_side_only(self):
        instance = _instance_for(REAL, 4, 0)
        plan = compile_expression(_workload(), instance.schema)
        with Engine(workers=1) as engine:
            with pytest.raises(RuntimeError):
                engine.submit_compiled(plan, instance)


# ----------------------------------------------------------------------
# Engine-level memoization
# ----------------------------------------------------------------------
class TestEngineMemo:
    def test_pooled_repeats_hit_and_count(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 0)
        with Engine(workers=1) as engine:
            first = engine.submit(expression, instance).result(30)
            second = engine.submit(expression, instance).result(30)
            snapshot = engine.stats()
            info = engine.memo_info()
        assert np.array_equal(first, second)
        assert snapshot.memo_hits == 1
        assert snapshot.memo_misses == 1
        assert snapshot.memo_bytes > 0
        assert info["entries"] == 1
        assert "memo=" in snapshot.render()

    def test_single_process_engine_can_opt_in(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 1)
        with Engine(memoize=True) as engine:
            first = engine.submit(expression, instance).result(30)
            second = engine.submit(expression, instance).result(30)
            snapshot = engine.stats()
        assert np.array_equal(first, second)
        assert snapshot.memo_hits == 1

    def test_memoization_off_by_default_single_process(self):
        with Engine() as engine:
            assert engine.memo_info() is None

    def test_hit_results_are_independent_copies(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 2)
        with Engine(memoize=True) as engine:
            first = engine.submit(expression, instance).result(30)
            first[0, 0] = 12345.0  # mutate the delivered array
            second = engine.submit(expression, instance).result(30)
        assert second[0, 0] != 12345.0

    def test_object_dtype_streams_never_memoize(self):
        expression = _workload()
        instance = _instance_for(PROVENANCE, 3, 0)
        with Engine(workers=1) as engine:
            engine.submit(expression, instance).result(60)
            engine.submit(expression, instance).result(60)
            snapshot = engine.stats()
            info = engine.memo_info()
        assert snapshot.memo_hits == 0
        assert snapshot.memo_misses == 0
        assert info["entries"] == 0


# ----------------------------------------------------------------------
# Worker lifecycle
# ----------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_killed_worker_respawns_and_serves(self):
        expression = _workload()
        with Engine(workers=2, memoize=False) as engine:
            engine.submit(expression, _instance_for(REAL, 6, 0)).result(30)
            for handle in engine._pool._handles:
                if handle.process is not None:
                    handle.process.kill()
                    break
            deadline = time.perf_counter() + 10
            while time.perf_counter() < deadline:
                if all(h.alive for h in engine._pool._handles):
                    break
                time.sleep(0.05)
            result = engine.submit(expression, _instance_for(REAL, 6, 1)).result(30)
        assert result is not None

    def test_crash_mid_flight_resolves_every_future(self):
        # Kill both workers while a burst is in flight: every future must
        # resolve — with the correct result (rescued) or WorkerCrashError
        # (rescue exhausted) — and never hang.
        expression = _workload()
        instances = [_instance_for(REAL, 48, seed) for seed in range(40)]
        with Engine(workers=2, memoize=False) as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            for handle in list(engine._pool._handles):
                if handle.process is not None:
                    handle.process.kill()
            outcomes = []
            for future, instance in zip(futures, instances):
                try:
                    result = future.result(60)
                except (WorkerCrashError, RuntimeError) as error:
                    outcomes.append(error)
                else:
                    assert np.array_equal(result, evaluate(expression, instance))
                    outcomes.append(None)
        assert len(outcomes) == len(instances)

    def test_submit_after_shutdown_fails_the_future(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 0)
        engine = Engine(workers=1)
        engine.submit(expression, instance).result(30)
        engine.shutdown()
        future = engine.submit(expression, instance)
        assert isinstance(future.exception(10), RuntimeError)

    def test_shutdown_vs_submit_race_resolves_everything(self):
        expression = _workload()
        instances = [_instance_for(REAL, 6, seed) for seed in range(30)]
        engine = Engine(workers=2, memoize=False)
        futures = []
        lock = threading.Lock()

        def submitter(chunk):
            for instance in chunk:
                future = engine.submit(expression, instance)
                with lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=submitter, args=(instances[i::3],))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        engine.shutdown()
        for thread in threads:
            thread.join()
        for future in futures:
            try:
                result = future.result(30)
            except RuntimeError:
                continue  # rejected at the closed door: a valid outcome
            assert result is not None  # accepted: must carry a real result

    def test_shutdown_is_idempotent(self):
        engine = Engine(workers=1)
        engine.shutdown()
        engine.shutdown()

    def test_pooled_shutdown_honors_wait_false(self):
        # shutdown(wait=False) must return without blocking on the pool
        # drain (which can take up to its 30s timeout); a later
        # shutdown(wait=True) joins the background drain, after which
        # every accepted future has resolved.
        expression = _workload()
        instances = [_instance_for(REAL, 32, seed) for seed in range(8)]
        engine = Engine(workers=1, memoize=False)
        futures = [engine.submit(expression, inst) for inst in instances]
        start = time.perf_counter()
        engine.shutdown(wait=False)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # far below the pool's 30s drain timeout
        engine.shutdown(wait=True)
        for future, instance in zip(futures, instances):
            assert np.array_equal(
                future.result(30), evaluate(expression, instance)
            )

    def test_no_leaked_shm_segments(self):
        # Runs after the lifecycle tests above (including kill -9 paths);
        # any surviving repro-svc segment is a cleanup bug.
        expression = _workload()
        with Engine(workers=2) as engine:
            engine.submit(expression, _instance_for(REAL, 6, 0)).result(30)
        leaked = glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")
        assert leaked == []


# ----------------------------------------------------------------------
# asyncio front end
# ----------------------------------------------------------------------
class TestAsyncio:
    def test_asubmit_and_asubmit_many(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 0)
        expected = evaluate(expression, instance)

        async def main():
            with Engine(workers=1) as engine:
                single = await engine.asubmit(expression, instance)
                burst = await engine.asubmit_many([(expression, instance)] * 4)
                return single, burst

        single, burst = asyncio.run(main())
        assert np.array_equal(single, expected)
        assert all(np.array_equal(result, expected) for result in burst)

    def test_asubmit_propagates_errors(self):
        instance = _instance_for(REAL, 4, 0)

        async def main():
            with Engine(workers=1) as engine:
                await engine.asubmit(var("NoSuchMatrix"), instance)

        with pytest.raises(Exception):
            asyncio.run(main())

    def test_asubmit_works_single_process_too(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 0)

        async def main():
            with Engine() as engine:
                return await engine.asubmit(expression, instance)

        assert np.array_equal(asyncio.run(main()), evaluate(expression, instance))


# ----------------------------------------------------------------------
# Socket protocol
# ----------------------------------------------------------------------
class TestQueryServer:
    def test_query_roundtrip(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 0)
        with Engine() as engine, QueryServer(engine) as server:
            host, port = server.address
            with QueryClient(host, port) as client:
                assert client.ping()
                result = client.query(expression, instance)
                burst = client.query_many([(expression, instance)] * 3)
                snapshot = client.stats()
        expected = evaluate(expression, instance)
        assert np.array_equal(result, expected)
        assert all(np.array_equal(item, expected) for item in burst)
        assert snapshot.completed == 4

    def test_remote_errors_carry_the_type_name(self):
        instance = _instance_for(REAL, 4, 0)
        with Engine() as engine, QueryServer(engine) as server:
            host, port = server.address
            with QueryClient(host, port) as client:
                with pytest.raises(RemoteQueryError) as excinfo:
                    client.query(var("NoSuchMatrix"), instance)
        assert excinfo.value.type_name

    def test_bad_magic_drops_the_connection(self):
        with Engine() as engine, QueryServer(engine) as server:
            host, port = server.address
            raw = socket.create_connection((host, port), timeout=5)
            try:
                raw.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
                raw.settimeout(5)
                try:
                    assert raw.recv(1) == b""  # closed without replying
                except ConnectionResetError:
                    pass  # also a close, just with unread bytes pending
            finally:
                raw.close()

    def test_non_loopback_bind_requires_explicit_opt_in(self):
        # The protocol unpickles payloads, so a reachable port is code
        # execution: non-loopback binds must be refused unless the caller
        # explicitly accepts the risk (and even then a warning fires).
        with Engine() as engine:
            with pytest.raises(ValueError):
                QueryServer(engine, host="0.0.0.0")
            with pytest.warns(UserWarning):
                server = QueryServer(engine, host="0.0.0.0", allow_remote=True)
            server.close()
            loopback = QueryServer(engine, host="localhost")
            loopback.close()

    def test_pooled_engine_behind_the_server(self):
        expression = _workload()
        instance = _instance_for(REAL, 6, 0)
        with Engine(workers=2) as engine, QueryServer(engine) as server:
            host, port = server.address
            with QueryClient(host, port) as client:
                result = client.query(expression, instance)
        assert np.array_equal(result, evaluate(expression, instance))


# ----------------------------------------------------------------------
# Profiler state plumbing and the persistence policy
# ----------------------------------------------------------------------
class TestProfilePlumbing:
    def _record_samples(self, profiler, count=4):
        instance = _instance_for(REAL, 8, 0)
        plan = compile_expression(_workload(), instance.schema)

        class _Value:
            shape = (8, 8)

        class _Op:
            opcode = "matmul"
            inputs = (0, 1)

        values = [_Value(), _Value(), _Value()]
        for _ in range(count):
            profiler.record(_Op(), "dense", values, 1e-4)
        profiler.observe_instance(instance)
        return plan

    def test_state_drains_and_merges(self):
        source = ExecutionProfiler()
        self._record_samples(source, count=5)
        assert source.sample_count() == 5
        state = source.state()
        assert source.sample_count() == 0  # drained
        target = ExecutionProfiler()
        target.merge_state(state)
        assert target.sample_count() == 5
        target.merge_state(None)  # no-op
        assert target.sample_count() == 5

    def test_state_without_drain_keeps_samples(self):
        source = ExecutionProfiler()
        self._record_samples(source, count=3)
        source.state(drain=False)
        assert source.sample_count() == 3

    def test_pooled_flush_merges_worker_measurements(self):
        # Sparse boolean instances execute per-instance inside the worker
        # with the profiler attached; flushing must pull those samples into
        # the parent's profiler.
        adjacency = np.zeros((128, 128), dtype=bool)
        for i in range(128):
            adjacency[i, (i + 1) % 128] = True
        expression = _workload()
        with Engine(workers=1, profile_feedback=True, memoize=False) as engine:
            for _ in range(3):
                instance = Instance.from_matrices(
                    {"A": adjacency.copy()}, semiring=BOOLEAN
                )
                engine.submit(expression, instance).result(60)
            engine.flush_profile()
            assert engine._profiler.sample_count() > 0

    def test_undersampled_refit_never_persists(self, tmp_path, monkeypatch):
        target = tmp_path / "profile.json"
        monkeypatch.setenv("REPRO_PROFILE_PATH", str(target))
        profile_instance = _instance_for(REAL, 6, 0)
        with Engine(
            profile_feedback=True, profile_persist_min_samples=10**9
        ) as engine:
            engine.submit(_workload(), profile_instance).result(30)
        assert not target.exists()

    def test_sampled_refit_persists_when_threshold_met(self, tmp_path, monkeypatch):
        target = tmp_path / "profile.json"
        monkeypatch.setenv("REPRO_PROFILE_PATH", str(target))
        adjacency = np.zeros((128, 128), dtype=bool)
        for i in range(128):
            adjacency[i, (i + 1) % 128] = True
        expression = _workload()
        with Engine(profile_feedback=True, profile_persist_min_samples=1) as engine:
            instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
            engine.submit(expression, instance).result(60)
        assert target.exists()

    def test_persistence_defaults_off(self, tmp_path, monkeypatch):
        target = tmp_path / "profile.json"
        monkeypatch.setenv("REPRO_PROFILE_PATH", str(target))
        adjacency = np.zeros((128, 128), dtype=bool)
        for i in range(128):
            adjacency[i, (i + 1) % 128] = True
        with Engine(profile_feedback=True) as engine:
            instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
            engine.submit(_workload(), instance).result(60)
        assert not target.exists()
