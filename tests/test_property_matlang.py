"""Hypothesis property tests for the MATLANG evaluator and the translations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kalgebra.matlang_to_ra import evaluate_via_relational
from repro.matlang.builder import lit, ssum, var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.matlang.parser import parse
from repro.matlang.printer import to_text
from repro.stdlib import trace, transitive_closure_indicator
from repro.experiments.workloads import random_sum_matlang_expression, reachability_closure

matrices = hnp.arrays(
    dtype=np.float64,
    shape=(3, 3),
    elements=st.floats(min_value=-3, max_value=3, allow_nan=False, width=32),
)

small_int_matrices = hnp.arrays(
    dtype=np.int64, shape=(3, 3), elements=st.integers(min_value=0, max_value=3)
)


@settings(max_examples=30, deadline=None)
@given(matrix=matrices)
def test_evaluator_matches_numpy_on_core_algebra(matrix):
    instance = Instance.from_matrices({"A": matrix})
    expression = var("A") @ var("A") + lit(2) * var("A").T
    assert np.allclose(
        np.asarray(evaluate(expression, instance), float), matrix @ matrix + 2 * matrix.T
    )


@settings(max_examples=30, deadline=None)
@given(matrix=matrices)
def test_trace_is_linear(matrix):
    instance = Instance.from_matrices({"A": matrix})
    doubled = Instance.from_matrices({"A": 2 * matrix})
    assert np.isclose(
        2 * evaluate(trace("A"), instance)[0, 0], evaluate(trace("A"), doubled)[0, 0]
    )


@settings(max_examples=30, deadline=None)
@given(matrix=matrices)
def test_sum_quantifier_equals_identity_decomposition(matrix):
    """Sigma_v (v . v^T) . A = A: canonical vectors decompose the identity."""
    instance = Instance.from_matrices({"A": matrix})
    expression = ssum("v", (var("v") @ var("v").T) @ var("A"))
    assert np.allclose(np.asarray(evaluate(expression, instance), float), matrix)


@settings(max_examples=20, deadline=None)
@given(matrix=small_int_matrices)
def test_transitive_closure_matches_reference(matrix):
    adjacency = (matrix > 1).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    instance = Instance.from_matrices({"A": adjacency})
    result = np.asarray(evaluate(transitive_closure_indicator("A"), instance), float)
    assert np.allclose(result, reachability_closure(adjacency))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_sum_matlang_expressions_roundtrip_through_text(seed):
    expression = random_sum_matlang_expression(seed, depth=3)
    assert parse(to_text(expression)) == expression


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), matrix=small_int_matrices)
def test_random_sum_matlang_expressions_agree_with_ra_translation(seed, matrix):
    """Property form of Proposition 6.3 on random expressions and inputs."""
    expression = random_sum_matlang_expression(seed, depth=2)
    instance = Instance.from_matrices(
        {"A": matrix.astype(float), "B": matrix.T.astype(float)}
    )
    direct = np.asarray(evaluate(expression, instance), float)
    via = np.asarray(evaluate_via_relational(expression, instance), float)
    assert np.allclose(direct, via)


@settings(max_examples=20, deadline=None)
@given(matrix=matrices, scale=st.floats(min_value=-2, max_value=2, allow_nan=False))
def test_scalar_multiplication_commutes_with_evaluation(matrix, scale):
    instance = Instance.from_matrices({"A": matrix})
    scaled = evaluate(lit(scale) * var("A"), instance)
    assert np.allclose(np.asarray(scaled, float), scale * matrix)
