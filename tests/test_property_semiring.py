"""Hypothesis property tests for semiring axioms and matrix algebra laws."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import BOOLEAN, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.provenance import PROVENANCE

SEMIRING_VALUES = {
    "real": st.floats(min_value=-10, max_value=10, allow_nan=False),
    "natural": st.integers(min_value=0, max_value=50),
    "boolean": st.booleans(),
    "min_plus": st.one_of(st.just(math.inf), st.floats(min_value=-10, max_value=10, allow_nan=False)),
    "max_plus": st.one_of(st.just(-math.inf), st.floats(min_value=-10, max_value=10, allow_nan=False)),
    "provenance": st.sampled_from(["p", "q", "r", 0, 1, 2]),
}

SEMIRINGS = {
    "real": REAL,
    "natural": NATURAL,
    "boolean": BOOLEAN,
    "min_plus": MIN_PLUS,
    "max_plus": MAX_PLUS,
    "provenance": PROVENANCE,
}


def triples(name):
    values = SEMIRING_VALUES[name]
    return st.tuples(values, values, values)


def _check_axioms(semiring, raw_triple):
    a, b, c = (semiring.coerce(value) for value in raw_triple)
    # Commutativity.
    assert semiring.equal(semiring.plus(a, b), semiring.plus(b, a))
    assert semiring.equal(semiring.times(a, b), semiring.times(b, a))
    # Associativity.
    assert semiring.close_to(
        semiring.plus(semiring.plus(a, b), c), semiring.plus(a, semiring.plus(b, c)), 1e-6
    )
    assert semiring.close_to(
        semiring.times(semiring.times(a, b), c), semiring.times(a, semiring.times(b, c)), 1e-6
    )
    # Identities and annihilation.
    assert semiring.equal(semiring.plus(a, semiring.zero), a)
    assert semiring.equal(semiring.times(a, semiring.one), a)
    assert semiring.equal(semiring.times(a, semiring.zero), semiring.zero)
    # Distributivity.
    assert semiring.close_to(
        semiring.times(a, semiring.plus(b, c)),
        semiring.plus(semiring.times(a, b), semiring.times(a, c)),
        1e-6,
    )


@settings(max_examples=60, deadline=None)
@given(triple=triples("real"))
def test_real_axioms(triple):
    _check_axioms(REAL, triple)


@settings(max_examples=60, deadline=None)
@given(triple=triples("natural"))
def test_natural_axioms(triple):
    _check_axioms(NATURAL, triple)


@settings(max_examples=60, deadline=None)
@given(triple=triples("boolean"))
def test_boolean_axioms(triple):
    _check_axioms(BOOLEAN, triple)


@settings(max_examples=60, deadline=None)
@given(triple=triples("min_plus"))
def test_min_plus_axioms(triple):
    _check_axioms(MIN_PLUS, triple)


@settings(max_examples=60, deadline=None)
@given(triple=triples("max_plus"))
def test_max_plus_axioms(triple):
    _check_axioms(MAX_PLUS, triple)


@settings(max_examples=40, deadline=None)
@given(triple=triples("provenance"))
def test_provenance_axioms(triple):
    _check_axioms(PROVENANCE, triple)


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.lists(st.integers(min_value=0, max_value=5), min_size=3, max_size=3),
        min_size=3,
        max_size=3,
    ),
    assignment=st.fixed_dictionaries(
        {"p": st.integers(0, 5), "q": st.integers(0, 5), "r": st.integers(0, 5)}
    ),
)
def test_provenance_specialisation_commutes_with_matmul(data, assignment):
    """The universal property of N[X]: specialise-then-multiply equals multiply-then-specialise."""
    tokens = np.array(
        [[PROVENANCE.coerce(token) for token in row] for row in [["p", "q", "r"]] * 3],
        dtype=object,
    )
    numeric = np.array(data, dtype=float)
    scaled = np.empty((3, 3), dtype=object)
    for i in range(3):
        for j in range(3):
            scaled[i, j] = PROVENANCE.times(tokens[i, j], PROVENANCE.coerce(int(numeric[i, j])))
    product = PROVENANCE.matmul(scaled, scaled)
    specialised_after = np.array(
        [[product[i, j].evaluate(REAL, assignment) for j in range(3)] for i in range(3)]
    )
    specialised_before = np.array(
        [
            [scaled[i, j].evaluate(REAL, assignment) for j in range(3)]
            for i in range(3)
        ]
    )
    assert np.allclose(specialised_after, specialised_before @ specialised_before)
