"""Tests for the serving tier's robustness subsystem (PR 8).

Covers the four coupled tentpole pieces and the satellites:

* **fault injection** — the seeded, programmatically-armed
  :class:`~repro.service.faults.FaultInjector`: deterministic schedules
  (``every`` / ``on_hits`` / ``limit`` / seeded ``probability``), context
  matching, and the zero-cost disarmed state;
* **deadlines** — expiry shed at submission, at dequeue, and the typed
  :class:`~repro.exceptions.DeadlineExceededError` resolution (never a
  raise out of ``submit``);
* **admission control** — queue-depth and backlog-cost shedding with
  :class:`~repro.exceptions.EngineOverloadedError`;
* **self-healing** — the circuit-breaker state machine, crash rescue
  under injected worker crashes, the watchdog killing *hung* (not dead)
  workers, and plan quarantine running poison plans on the sandboxed
  single-instance path with correct results;
* **scheduler death** — an unexpected scheduler exception resolves every
  pending and in-flight future with
  :class:`~repro.exceptions.EngineDiedError` instead of hanging;
* **transport degradation** — injected shm-ring write failures falling
  back to pipe pickling, and injected socket drops mid-frame;
* **server failure paths** — client disconnects mid-frame, truncated
  length prefixes, handler exceptions inside a burst, connect timeouts;
* **profiler plumbing** — worker profiler state merging into the parent
  on the heartbeat cadence, without waiting for shutdown.
"""

import glob
import socket
import struct
import time

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineExceededError,
    EngineDiedError,
    EngineOverloadedError,
    PlanQuarantinedError,
    ServiceError,
)
from repro.matlang.builder import ssum, var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.profile import DEFAULT_PROFILE, set_active_profile
from repro.semiring import REAL
from repro.service import (
    CoalescingPolicy,
    Engine,
    QueryClient,
    QueryServer,
    RemoteQueryError,
    faults,
)
from repro.service.faults import FaultInjector, InjectedFault, injected_faults
from repro.service.health import CircuitBreaker, backoff_delays
from repro.service.shm import SEGMENT_PREFIX


@pytest.fixture(autouse=True)
def _pristine_faults():
    """No test may leak an armed injector into the next."""
    yield
    faults.disarm()
    set_active_profile(DEFAULT_PROFILE)


def _workload():
    return ssum("_v", var("A") @ var("_v"))


def _instance(size=8, seed=0):
    rng = np.random.default_rng(seed)
    return Instance.from_matrices(
        {"A": rng.standard_normal((size, size))}, semiring=REAL
    )


# ----------------------------------------------------------------------
# Fault injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_disarmed_by_default(self):
        assert faults.ACTIVE is None

    def test_context_manager_arms_and_disarms(self):
        with injected_faults(seed=1) as injector:
            assert faults.ACTIVE is injector
        assert faults.ACTIVE is None

    def test_every_schedule_is_deterministic(self):
        injector = FaultInjector(seed=0)
        injector.arm("site", "raise", every=3)
        pattern = []
        for _ in range(9):
            try:
                injector.fire("site")
                pattern.append(False)
            except InjectedFault:
                pattern.append(True)
        assert pattern == [False, False, True] * 3

    def test_on_hits_and_limit(self):
        injector = FaultInjector(seed=0)
        injector.arm("site", "raise", on_hits={2, 4, 6}, limit=2)
        fired = []
        for hit in range(1, 8):
            try:
                injector.fire("site")
            except InjectedFault:
                fired.append(hit)
        assert fired == [2, 4]  # the limit stops the third scheduled fire

    def test_probability_is_seed_deterministic(self):
        def schedule(seed):
            injector = FaultInjector(seed=seed)
            injector.arm("site", "raise", probability=0.5)
            pattern = []
            for _ in range(32):
                try:
                    injector.fire("site")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert schedule(42) == schedule(42)
        assert any(schedule(42))  # the schedule actually fires sometimes

    def test_match_restricts_to_context(self):
        injector = FaultInjector(seed=0)
        injector.arm("site", "raise", match={"worker": 1})
        injector.fire("site", worker=0)  # must not raise
        with pytest.raises(InjectedFault):
            injector.fire("site", worker=1)

    def test_deny_and_fire_are_separate_channels(self):
        injector = FaultInjector(seed=0)
        injector.arm("site", "deny")
        injector.fire("site")  # a deny spec never raises through fire()
        assert injector.deny("site") is True
        assert injector.fired["site"] >= 1

    def test_custom_error_and_reset(self):
        injector = FaultInjector(seed=0)
        injector.arm("site", "raise", error=ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            injector.fire("site")
        injector.reset("site")
        injector.fire("site")  # disarmed again


# ----------------------------------------------------------------------
# Healing primitives
# ----------------------------------------------------------------------
class TestHealthPrimitives:
    def test_backoff_delays_bounded_exponential(self):
        delays = list(backoff_delays(5, base=0.01, factor=2.0, cap=0.05))
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]
        assert list(backoff_delays(0)) == []

    def test_breaker_trips_after_strikes_and_probes(self):
        breaker = CircuitBreaker(strikes=2, reset_after=0.05)
        assert breaker.admit("plan") == "closed"
        assert breaker.strike("plan") is False
        assert breaker.strike("plan") is True  # second strike trips
        assert breaker.admit("plan") == "open"
        assert breaker.open_count() == 1
        time.sleep(0.06)
        assert breaker.admit("plan") == "probe"  # half-open lets one through
        assert breaker.admit("plan") == "open"  # ...exactly one
        breaker.record_success("plan")
        assert breaker.admit("plan") == "closed"
        assert breaker.open_count() == 0

    def test_breaker_probe_death_reopens(self):
        breaker = CircuitBreaker(strikes=1, reset_after=0.02)
        assert breaker.strike("plan") is True
        time.sleep(0.03)
        assert breaker.admit("plan") == "probe"
        assert breaker.strike("plan") is True  # the probe died: reopen
        assert breaker.admit("plan") == "open"
        assert breaker.trips == 2

    def test_breaker_resets_on_profile_generation_bump(self):
        breaker = CircuitBreaker(strikes=1, reset_after=60.0)
        assert breaker.strike("plan") is True
        assert breaker.admit("plan") == "open"
        set_active_profile(DEFAULT_PROFILE)  # bumps the generation
        assert breaker.admit("plan") == "closed"
        assert breaker.open_count() == 0


# ----------------------------------------------------------------------
# Deadlines and admission control (single-process engine)
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_met_deadline_changes_nothing(self):
        instance = _instance()
        with Engine(memoize=False) as engine:
            value = engine.submit(_workload(), instance, deadline=30.0).result(30)
        assert np.array_equal(value, evaluate(_workload(), instance))

    def test_expired_at_submit_sheds_without_queueing(self):
        with Engine(memoize=False) as engine:
            future = engine.submit(_workload(), _instance(), deadline=1e-9)
            assert future.done()  # shed synchronously, never queued
            with pytest.raises(DeadlineExceededError):
                future.result(1)
            snapshot = engine.stats()
        assert snapshot.shed_expired == 1
        assert snapshot.failed == 1

    def test_policy_default_deadline_applies(self):
        policy = CoalescingPolicy(default_deadline=1e-9)
        with Engine(policy=policy, memoize=False) as engine:
            with pytest.raises(DeadlineExceededError):
                engine.submit(_workload(), _instance()).result(1)
            assert engine.stats().shed_expired == 1

    def test_expiry_between_enqueue_and_dispatch_sheds_at_dequeue(self):
        # Stall the scheduler (injected sleep fires after the drain, before
        # the shed pass) so a request whose deadline was healthy at
        # submission is expired by the time the batch forms.
        with injected_faults(seed=0) as injector:
            injector.arm("engine.scheduler", "sleep", seconds=0.1)
            with Engine(memoize=False) as engine:
                future = engine.submit(_workload(), _instance(), deadline=0.02)
                with pytest.raises(DeadlineExceededError, match="before dispatch"):
                    future.result(10)
                snapshot = engine.stats()
        assert snapshot.shed_expired == 1
        assert snapshot.completed == 0

    def test_queue_depth_overload_sheds_typed(self):
        policy = CoalescingPolicy(max_queue_depth=1)
        with injected_faults(seed=0) as injector:
            # Hold the drained batch inside the scheduler so the depth gauge
            # stays up while the follow-up submissions arrive.
            injector.arm("engine.scheduler", "sleep", seconds=0.5)
            with Engine(policy=policy, memoize=False) as engine:
                first = engine.submit(_workload(), _instance())
                shed = [engine.submit(_workload(), _instance()) for _ in range(3)]
                for future in shed:
                    assert future.done()  # rejected synchronously, not queued
                    with pytest.raises(EngineOverloadedError):
                        future.result(1)
                assert np.array_equal(
                    first.result(30), evaluate(_workload(), _instance())
                )
                assert engine.stats().shed_overload == 3

    def test_pending_cost_overload_sheds_typed(self):
        policy = CoalescingPolicy(max_pending_cost=1.0)
        with injected_faults(seed=0) as injector:
            injector.arm("engine.scheduler", "sleep", seconds=0.5)
            with Engine(policy=policy, memoize=False) as engine:
                first = engine.submit(_workload(), _instance())
                second = engine.submit(_workload(), _instance())
                with pytest.raises(EngineOverloadedError, match="backlog cost"):
                    second.result(1)
                assert np.array_equal(
                    first.result(30), evaluate(_workload(), _instance())
                )
                assert engine.stats().shed_overload == 1

    def test_shed_errors_resolve_futures_not_submit(self):
        # The contract: submit() never raises for shed requests — callers
        # iterating a burst must get every future back.
        policy = CoalescingPolicy(default_deadline=1e-9)
        with Engine(policy=policy, memoize=False) as engine:
            futures = engine.submit_many(
                [(_workload(), _instance())] * 4
            )
            assert len(futures) == 4
            for future in futures:
                assert isinstance(future.exception(1), DeadlineExceededError)


# ----------------------------------------------------------------------
# Scheduler death (satellite: no future may hang)
# ----------------------------------------------------------------------
class TestSchedulerDeath:
    def test_scheduler_exception_fails_all_futures_typed(self):
        with injected_faults(seed=0) as injector:
            injector.arm("engine.scheduler", "raise", limit=1)
            engine = Engine(memoize=False)
            try:
                futures = [
                    engine.submit(_workload(), _instance(seed=seed))
                    for seed in range(6)
                ]
                for future in futures:
                    error = future.exception(10)
                    assert isinstance(error, EngineDiedError)
                    assert isinstance(error.__cause__, InjectedFault)
                # Later submissions resolve immediately with the same error.
                late = engine.submit(_workload(), _instance())
                assert isinstance(late.exception(1), EngineDiedError)
            finally:
                engine.shutdown()

    def test_dead_engine_rejects_evaluate(self):
        with injected_faults(seed=0) as injector:
            injector.arm("engine.scheduler", "raise", limit=1)
            engine = Engine(memoize=False)
            try:
                with pytest.raises((EngineDiedError, InjectedFault)):
                    engine.evaluate(_workload(), _instance())
                with pytest.raises(EngineDiedError):
                    engine.evaluate(_workload(), _instance())
            finally:
                engine.shutdown()


# ----------------------------------------------------------------------
# Pooled self-healing
# ----------------------------------------------------------------------
class TestPooledHealing:
    def test_crash_rescue_under_periodic_worker_crashes(self):
        # Every 10th task a worker executes kills it.  The tier's contract:
        # a first-time orphan is rescued onto a live worker and completes
        # correctly; an orphan whose rescue *also* died fails with the typed
        # WorkerCrashError (at-most-once rescue — the breaker, not endless
        # re-dispatch, handles plans that keep killing workers).  Bounded
        # submission waves keep the orphan sets small, so double-orphaning
        # stays rare and strictly bounded by the wave size.
        expression = _workload()
        instances = [_instance(seed=seed) for seed in range(8)]
        expected = [evaluate(expression, instance) for instance in instances]
        correct = 0
        crashes = []
        with injected_faults(seed=7) as injector:
            injector.arm("worker.task", "crash", every=10)
            with Engine(workers=2, memoize=False) as engine:
                for wave in range(10):
                    futures = [
                        (index, engine.submit(expression, instances[index % 8]))
                        for index in range(wave * 4, wave * 4 + 4)
                    ]
                    for index, future in futures:
                        error = future.exception(60)
                        if error is None:
                            assert np.array_equal(
                                future.result(0), expected[index % 8]
                            )
                            correct += 1
                        else:
                            crashes.append(error)
                snapshot = engine.stats()
        from repro.service import WorkerCrashError

        assert all(isinstance(error, WorkerCrashError) for error in crashes)
        assert len(crashes) <= 8  # at most two waves' worth of double-orphans
        assert correct >= 32
        assert snapshot.worker_respawns >= 1
        assert "respawns=" in snapshot.render()

    def test_poison_plan_quarantines_to_sandbox_with_correct_results(self):
        # Every pool execution of the plan kills its worker; after two
        # coinciding deaths the breaker opens and the remaining requests run
        # on the sandboxed single-instance path — which must produce the
        # *correct* value (the sandbox does not run the injected fault).
        expression = _workload()
        instances = [_instance(seed=seed) for seed in range(10)]
        expected = [evaluate(expression, instance) for instance in instances]
        policy = CoalescingPolicy(quarantine_strikes=2, quarantine_reset=60.0)
        with injected_faults(seed=3) as injector:
            injector.arm("worker.task", "crash", every=1)
            with Engine(workers=1, policy=policy, memoize=False) as engine:
                futures = [
                    engine.submit(expression, instance) for instance in instances
                ]
                for future, want in zip(futures, expected):
                    assert np.array_equal(future.result(120), want)
                snapshot = engine.stats()
        assert snapshot.quarantine_trips >= 1
        assert snapshot.quarantined_requests >= 1
        assert snapshot.worker_respawns >= 2
        assert "quarantine=" in snapshot.render()

    def test_quarantine_rejects_typed_when_execution_disabled(self):
        expression = _workload()
        policy = CoalescingPolicy(
            quarantine_strikes=2, quarantine_reset=60.0, quarantine_execute=False
        )
        with injected_faults(seed=3) as injector:
            injector.arm("worker.task", "crash", every=1)
            with Engine(workers=1, policy=policy, memoize=False) as engine:
                futures = [
                    engine.submit(expression, _instance(seed=seed))
                    for seed in range(10)
                ]
                outcomes = [future.exception(120) for future in futures]
        # Every future resolved, and the quarantined tail is typed.
        assert all(
            outcome is None or isinstance(outcome, ServiceError)
            for outcome in outcomes
        )
        assert any(
            isinstance(outcome, PlanQuarantinedError) for outcome in outcomes
        )

    def test_watchdog_kills_hung_worker_and_pool_recovers(self):
        # The first task wedges its worker far past deadline + grace; the
        # watchdog must force-kill it (heartbeats are still flowing, so this
        # exercises the hung-*task* detector), the rescue path resolves the
        # stuck future with the deadline error, and the respawned worker
        # serves the follow-up request correctly.
        expression = _workload()
        instance = _instance()
        policy = CoalescingPolicy(
            heartbeat_interval=0.05,
            heartbeat_timeout=10.0,
            hung_task_grace=0.2,
            default_deadline=0.5,
        )
        with injected_faults(seed=5) as injector:
            # Matched to the first task id: the respawned worker re-inherits
            # the armed injector through fork, and an unrestricted sleep
            # would wedge it again on the follow-up request.
            injector.arm("worker.task", "sleep", seconds=30.0, match={"task": 1})
            with Engine(workers=1, policy=policy, memoize=False) as engine:
                stuck = engine.submit(expression, instance)
                assert isinstance(stuck.exception(30), DeadlineExceededError)
                follow_up = engine.submit(expression, instance, deadline=30.0)
                assert np.array_equal(
                    follow_up.result(30), evaluate(expression, instance)
                )
                snapshot = engine.stats()
        assert snapshot.watchdog_kills >= 1
        assert snapshot.worker_respawns >= 1
        assert "watchdog=" in snapshot.render()

    def test_shm_write_failure_degrades_to_pipe_pickling(self):
        expression = _workload()
        instances = [_instance(seed=seed) for seed in range(10)]
        expected = [evaluate(expression, instance) for instance in instances]
        with injected_faults(seed=11) as injector:
            injector.arm("shm.write", "deny", every=2)
            with Engine(workers=1, memoize=False) as engine:
                futures = [
                    engine.submit(expression, instance) for instance in instances
                ]
                for future, want in zip(futures, expected):
                    assert np.array_equal(future.result(60), want)
        assert injector.fired.get("shm.write", 0) >= 1

    def test_worker_profiles_merge_on_heartbeat_cadence(self):
        # The parent's profiler must see worker samples while the pool is
        # still serving — shipped piggybacked on heartbeats — not only at
        # shutdown flush (the PR 7 behaviour).
        expression = _workload()
        policy = CoalescingPolicy(heartbeat_interval=0.02, heartbeat_timeout=5.0)
        with Engine(
            workers=1, policy=policy, memoize=False, profile_feedback=True
        ) as engine:
            for seed in range(6):
                engine.submit(expression, _instance(seed=seed)).result(30)
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if engine._profiler.sample_count() > 0:
                    break
                time.sleep(0.05)
            assert engine._profiler.sample_count() > 0

    def test_no_leaked_shm_segments_after_healing(self):
        # Crash + watchdog paths above must leave /dev/shm clean.
        leaked = glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")
        assert leaked == []


# ----------------------------------------------------------------------
# Socket server failure paths (satellite)
# ----------------------------------------------------------------------
class TestServerFailurePaths:
    def test_remote_deadline_raises_typed(self):
        instance = _instance()
        with Engine(memoize=False) as engine, QueryServer(engine) as server:
            host, port = server.address
            with QueryClient(host, port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.query(_workload(), instance, deadline=1e-9)
                # The connection survives the typed error.
                value = client.query(_workload(), instance)
                assert np.array_equal(value, evaluate(_workload(), instance))

    def test_client_disconnect_mid_frame_does_not_kill_server(self):
        instance = _instance()
        with Engine(memoize=False) as engine, QueryServer(engine) as server:
            host, port = server.address
            # A raw peer announces a large frame, sends half of it, and
            # vanishes; the server must drop that connection and keep
            # serving others.
            rogue = socket.create_connection((host, port), timeout=5)
            rogue.sendall(struct.pack(">I", 1 << 16) + b"x" * 100)
            rogue.close()
            time.sleep(0.05)
            with QueryClient(host, port) as client:
                assert client.ping()

    def test_truncated_length_prefix_is_tolerated(self):
        with Engine(memoize=False) as engine, QueryServer(engine) as server:
            host, port = server.address
            rogue = socket.create_connection((host, port), timeout=5)
            rogue.sendall(b"\x00\x00")  # half a length prefix
            rogue.close()
            time.sleep(0.05)
            with QueryClient(host, port) as client:
                assert client.ping()

    def test_handler_exception_inside_burst_raises_remote(self):
        instance = _instance()
        with Engine(memoize=False) as engine, QueryServer(engine) as server:
            host, port = server.address
            with QueryClient(host, port) as client:
                with pytest.raises(RemoteQueryError):
                    client.query_many(
                        [
                            (_workload(), instance),
                            (var("NoSuchMatrix"), instance),
                        ]
                    )
                assert client.ping()  # the connection is still healthy

    def test_connect_timeout_budget_is_separate_from_io_timeout(self):
        # A listener with a saturated accept queue never completes the
        # handshake; the client must give up within the connect budget, not
        # the 30s I/O timeout.
        listener = socket.socket()
        backlog_fill = []
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(0)
            port = listener.getsockname()[1]
            for _ in range(4):  # saturate the (tiny) accept queue
                filler = socket.socket()
                filler.settimeout(0.5)
                try:
                    filler.connect(("127.0.0.1", port))
                except OSError:
                    filler.close()
                    break
                backlog_fill.append(filler)
            start = time.perf_counter()
            with pytest.raises(OSError):
                QueryClient("127.0.0.1", port, timeout=30.0, connect_timeout=0.5)
            assert time.perf_counter() - start < 10.0
        finally:
            for filler in backlog_fill:
                filler.close()
            listener.close()

    def test_injected_socket_drop_mid_frame(self):
        instance = _instance()
        with Engine(memoize=False) as engine, QueryServer(engine) as server:
            host, port = server.address
            client = QueryClient(host, port)
            try:
                with injected_faults(seed=0) as injector:
                    injector.arm("server.send", "deny", limit=1)
                    with pytest.raises((ConnectionError, OSError, EOFError)):
                        client.query(_workload(), instance)
            finally:
                client.close()
            # The server survives the drop: a fresh client works.
            with QueryClient(host, port) as fresh:
                assert np.array_equal(
                    fresh.query(_workload(), instance),
                    evaluate(_workload(), instance),
                )
