"""Property tests for the vectorized kernel backends.

Every registered semiring's kernel backend must agree entrywise with the
generic object-dtype scalar fold (:class:`ObjectFoldKernels`) on random
carrier matrices — that equivalence is the kernel contract of
:mod:`repro.semiring.kernels`.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SemiringError
from repro.semiring import (
    BOOLEAN,
    INTEGER,
    MAX_PLUS,
    MIN_PLUS,
    NATURAL,
    REAL,
    ObjectFoldKernels,
    Semiring,
    available_semirings,
    kernels_for,
)
from repro.semiring.kernels import (
    BooleanKernels,
    Float64FieldKernels,
    Int64Kernels,
    TropicalKernels,
)
from repro.semiring.provenance import PROVENANCE
from repro.semiring.registry import get_semiring

SEMIRING_ELEMENTS = {
    "real": st.floats(min_value=-10, max_value=10, allow_nan=False),
    "integer": st.integers(min_value=-50, max_value=50),
    "natural": st.integers(min_value=0, max_value=50),
    "boolean": st.booleans(),
    "min_plus": st.one_of(
        st.just(math.inf), st.floats(min_value=-10, max_value=10, allow_nan=False)
    ),
    "max_plus": st.one_of(
        st.just(-math.inf), st.floats(min_value=-10, max_value=10, allow_nan=False)
    ),
    "provenance": st.sampled_from(["p", "q", "r", 0, 1, 2]),
}


def _matrix_strategy(name, rows, cols):
    elements = SEMIRING_ELEMENTS[name]
    return st.lists(
        st.lists(elements, min_size=cols, max_size=cols), min_size=rows, max_size=rows
    )


def _object_matrix(semiring, rows):
    matrix = np.empty((len(rows), len(rows[0])), dtype=object)
    for i, row in enumerate(rows):
        for j, value in enumerate(row):
            matrix[i, j] = semiring.coerce(value)
    return matrix


def _assert_matrices_agree(semiring, vectorized, reference, context):
    assert vectorized.shape == reference.shape, context
    for index in np.ndindex(reference.shape):
        assert semiring.close_to(vectorized[index], reference[index], 1e-6), (
            f"{context}: entry {index} differs: "
            f"{vectorized[index]!r} != {reference[index]!r}"
        )


def _check_all_operations(semiring, left_rows, right_rows):
    fold = ObjectFoldKernels(semiring, dtype=object)
    kernels = semiring.kernels

    left_obj = _object_matrix(semiring, left_rows)
    right_obj = _object_matrix(semiring, right_rows)
    left_vec = kernels.coerce_matrix(left_obj)
    right_vec = kernels.coerce_matrix(right_obj)

    _assert_matrices_agree(semiring, left_vec, left_obj, "coerce_matrix")

    _assert_matrices_agree(
        semiring,
        kernels.matmul(left_vec, right_vec),
        fold.matmul(left_obj, right_obj),
        "matmul",
    )
    _assert_matrices_agree(
        semiring,
        kernels.add_matrices(left_vec, left_vec),
        fold.add_matrices(left_obj, left_obj),
        "add_matrices",
    )
    _assert_matrices_agree(
        semiring,
        kernels.hadamard(left_vec, left_vec),
        fold.hadamard(left_obj, left_obj),
        "hadamard",
    )

    factor = left_obj[0, 0]
    _assert_matrices_agree(
        semiring,
        kernels.scale(factor, right_vec),
        fold.scale(factor, right_obj),
        "scale",
    )

    column_obj = left_obj[:, :1]
    column_vec = left_vec[:, :1]
    _assert_matrices_agree(
        semiring, kernels.diag(column_vec), fold.diag(column_obj), "diag"
    )
    _assert_matrices_agree(
        semiring, kernels.identity(3), fold.identity(3), "identity"
    )
    _assert_matrices_agree(semiring, kernels.zeros(2, 3), fold.zeros(2, 3), "zeros")
    _assert_matrices_agree(semiring, kernels.ones(2, 3), fold.ones(2, 3), "ones")

    values = [left_obj[index] for index in np.ndindex(left_obj.shape)]
    assert semiring.close_to(kernels.sum(values), fold.sum(values), 1e-6)
    assert semiring.close_to(kernels.product(values), fold.product(values), 1e-6)

    assert kernels.matrices_equal(left_vec, kernels.coerce_matrix(left_obj))


@pytest.mark.parametrize(
    "name", ["real", "integer", "natural", "boolean", "min_plus", "max_plus", "provenance"]
)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_kernels_agree_with_object_fold(name, data):
    semiring = get_semiring(name)
    left = data.draw(_matrix_strategy(name, 3, 4))
    right = data.draw(_matrix_strategy(name, 4, 3))
    _check_all_operations(semiring, left, right)


def test_every_registered_semiring_is_covered():
    """The property test above must not silently skip a registered semiring."""
    # Throwaway semirings registered by other test modules are exempt.
    registered = {name for name in available_semirings() if not name.startswith("test_")}
    assert registered <= set(SEMIRING_ELEMENTS), (
        "a newly registered semiring needs an element strategy in "
        "SEMIRING_ELEMENTS so the kernel equivalence property covers it"
    )


class TestBackendSelection:
    def test_builtin_backends(self):
        assert isinstance(REAL.kernels, Float64FieldKernels)
        assert isinstance(BOOLEAN.kernels, BooleanKernels)
        assert isinstance(NATURAL.kernels, Int64Kernels)
        assert isinstance(INTEGER.kernels, Int64Kernels)
        assert isinstance(MIN_PLUS.kernels, TropicalKernels)
        assert isinstance(MAX_PLUS.kernels, TropicalKernels)
        assert isinstance(PROVENANCE.kernels, ObjectFoldKernels)

    def test_storage_dtypes_match_declared_dtype(self):
        for name in available_semirings():
            semiring = get_semiring(name)
            assert semiring.kernels.dtype == semiring.dtype, name
            assert semiring.zeros(2, 2).dtype == semiring.dtype, name

    def test_unknown_semiring_falls_back_to_object_fold(self):
        class OddSemiring(Semiring):
            name = "test_kernels_fallback"

            @property
            def zero(self):
                return 0.0

            @property
            def one(self):
                return 1.0

            def plus(self, left, right):
                return max(left, right)

            def times(self, left, right):
                return min(left, right)

            def coerce(self, value):
                return float(value)

        backend = kernels_for(OddSemiring())
        assert isinstance(backend, ObjectFoldKernels)
        assert backend.dtype is object

    def test_fallback_honors_a_subclass_declared_dtype(self):
        # A custom semiring may shadow the derived dtype property with a
        # plain class attribute; the object-fold fallback must respect it.
        class DeclaredDtype(Semiring):
            name = "test_kernels_declared_dtype"
            dtype = np.float64

            @property
            def zero(self):
                return 0.0

            @property
            def one(self):
                return 1.0

            def plus(self, left, right):
                return max(left, right)

            def times(self, left, right):
                return min(left, right)

            def coerce(self, value):
                return float(value)

        semiring = DeclaredDtype()
        assert isinstance(semiring.kernels, ObjectFoldKernels)
        assert semiring.kernels.dtype == np.float64
        assert semiring.zeros(2, 2).dtype == np.float64

    def test_overwriting_a_semiring_drops_the_stale_kernel_factory(self):
        from repro.semiring import register_semiring

        def make(name):
            class Custom(Semiring):
                @property
                def zero(self):
                    return 0

                @property
                def one(self):
                    return 1

                def plus(self, left, right):
                    return int(left) + int(right)

                def times(self, left, right):
                    return int(left) * int(right)

                def coerce(self, value):
                    return int(value)

            Custom.name = name
            return Custom()

        first = make("test_kernels_overwrite")
        register_semiring(first, kernels=Int64Kernels)
        assert isinstance(first.kernels, Int64Kernels)
        # Re-registering without a kernels factory must not silently inherit
        # the old vectorized backend.
        second = make("test_kernels_overwrite")
        register_semiring(second, overwrite=True)
        assert isinstance(second.kernels, ObjectFoldKernels)

    def test_int64_scale_coerces_the_factor(self):
        # Regression: int(factor) silently truncated 2.5, and NATURAL.scale
        # accepted a negative factor, emitting an out-of-carrier matrix.
        matrix = NATURAL.coerce_matrix(np.array([[2, 3]]))
        with pytest.raises(SemiringError):
            NATURAL.scale(2.5, matrix)
        with pytest.raises(SemiringError):
            NATURAL.scale(-1, matrix)
        assert INTEGER.scale(-1, matrix).tolist() == [[-2, -3]]

    def test_tropical_scale_rejects_out_of_carrier_factor(self):
        # Regression: scale(-inf, M) over min-plus produced NaN wherever M
        # held the tropical zero (+inf), instead of rejecting the factor.
        matrix = MIN_PLUS.coerce_matrix(np.array([[2.0, math.inf]]))
        with pytest.raises(SemiringError):
            MIN_PLUS.scale(-math.inf, matrix)
        scaled = MIN_PLUS.scale(math.inf, matrix)  # the zero annihilates
        assert np.all(scaled == math.inf)

    def test_register_kernels_then_semiring_overwrite_keeps_kernels(self):
        # Regression: the defensive order register_kernels(...) followed by
        # register_semiring(..., overwrite=True) used to drop the factory.
        from repro.semiring import register_semiring
        from repro.semiring.kernels import register_kernels

        class Custom(Semiring):
            name = "test_kernels_preinstalled"

            @property
            def zero(self):
                return 0.0

            @property
            def one(self):
                return 1.0

            def plus(self, left, right):
                return left + right

            def times(self, left, right):
                return left * right

            def coerce(self, value):
                return float(value)

        register_kernels("test_kernels_preinstalled", Float64FieldKernels)
        semiring = Custom()
        register_semiring(semiring, overwrite=True)
        assert isinstance(semiring.kernels, Float64FieldKernels)

    def test_reregistering_the_same_semiring_keeps_its_kernels(self):
        # An idempotent "ensure registered" refresh of a builtin must not
        # silently degrade it to the object fold.
        from repro.semiring import register_semiring

        register_semiring(REAL, overwrite=True)
        assert isinstance(REAL.kernels, Float64FieldKernels)
        assert REAL.dtype == np.float64

    def test_kernel_backend_is_cached_per_semiring(self):
        assert REAL.kernels is REAL.kernels

    def test_reregistering_kernels_takes_effect_immediately(self):
        # Regression: the error message advertises ObjectFoldKernels as the
        # arbitrary-precision escape hatch; following that advice must
        # actually work, including for singletons with a cached backend.
        from repro.semiring.kernels import register_kernels

        assert isinstance(INTEGER.kernels, Int64Kernels)  # prime the cache
        register_kernels("integer", ObjectFoldKernels, overwrite=True)
        try:
            coerced = INTEGER.coerce_matrix(np.array([[2**70]], dtype=object))
            assert coerced.dtype == object
            assert coerced[0, 0] == 2**70
            # Semiring.dtype is derived from the backend, so it follows.
            assert INTEGER.dtype is object
        finally:
            register_kernels("integer", Int64Kernels, overwrite=True)
        assert isinstance(INTEGER.kernels, Int64Kernels)
        assert INTEGER.dtype == np.int64

    def test_register_semiring_is_atomic_when_kernels_clash(self):
        # Regression: a failing kernels registration used to leave the
        # semiring half-registered.
        from repro.exceptions import SemiringError as SRError
        from repro.semiring import register_semiring
        from repro.semiring.kernels import register_kernels

        class Clashing(Semiring):
            name = "test_kernels_clash"

            @property
            def zero(self):
                return 0.0

            @property
            def one(self):
                return 1.0

            def plus(self, left, right):
                return left + right

            def times(self, left, right):
                return left * right

            def coerce(self, value):
                return float(value)

        register_kernels("test_kernels_clash", ObjectFoldKernels)
        with pytest.raises(SRError):
            register_semiring(Clashing(), kernels=ObjectFoldKernels)
        assert "test_kernels_clash" not in available_semirings()


class TestShapeValidation:
    @pytest.mark.parametrize("name", ["real", "boolean", "natural", "min_plus"])
    def test_matmul_shape_mismatch(self, name):
        semiring = get_semiring(name)
        with pytest.raises(SemiringError):
            semiring.matmul(semiring.zeros(2, 3), semiring.zeros(2, 3))

    @pytest.mark.parametrize("name", ["real", "boolean", "natural", "min_plus"])
    def test_add_shape_mismatch(self, name):
        semiring = get_semiring(name)
        with pytest.raises(SemiringError):
            semiring.add_matrices(semiring.zeros(2, 3), semiring.zeros(3, 2))

    @pytest.mark.parametrize("name", ["real", "boolean", "natural", "min_plus"])
    def test_hadamard_shape_mismatch(self, name):
        semiring = get_semiring(name)
        with pytest.raises(SemiringError):
            semiring.hadamard(semiring.zeros(2, 3), semiring.zeros(3, 2))

    def test_matrices_equal_shape_mismatch_is_false(self):
        assert not MIN_PLUS.matrices_equal(MIN_PLUS.zeros(2, 2), MIN_PLUS.zeros(3, 3))


class TestCarrierBoundaries:
    def test_natural_rejects_negative_matrix_entries(self):
        with pytest.raises(SemiringError):
            NATURAL.coerce_matrix(np.array([[1, -2], [3, 4]]))

    def test_natural_rejects_non_integral_floats(self):
        with pytest.raises(SemiringError):
            NATURAL.coerce_matrix(np.array([[1.5, 2.0]]))

    def test_int64_rejects_values_that_do_not_fit(self):
        with pytest.raises(SemiringError):
            INTEGER.coerce_matrix(np.array([[2**70]], dtype=object))

    def test_int64_rejects_oversized_floats_instead_of_wrapping(self):
        # Regression: 1e19 passed the integrality check and then astype
        # silently wrapped it to a negative int64.
        with pytest.raises(SemiringError):
            INTEGER.coerce_matrix(np.array([[1e19]]))

    def test_int64_rejects_oversized_uint64(self):
        with pytest.raises(SemiringError):
            INTEGER.coerce_matrix(np.array([[2**63]], dtype=np.uint64))
        # int64 max itself still fits.
        fits = INTEGER.coerce_matrix(np.array([[2**63 - 1]], dtype=np.uint64))
        assert fits[0, 0] == 2**63 - 1

    def test_from_rows_and_scalar_raise_semiring_error_for_big_ints(self):
        from repro.semiring import from_rows, scalar

        with pytest.raises(SemiringError):
            from_rows(INTEGER, [[2**70]])
        with pytest.raises(SemiringError):
            scalar(NATURAL, 2**70)

    def test_from_entries_sparse_construction(self):
        from repro.semiring import from_entries

        matrix = from_entries(MIN_PLUS, 2, 3, {(0, 1): 4.0, (1, 2): 0.5})
        assert matrix.dtype == np.float64
        assert matrix[0, 1] == 4.0 and matrix[1, 2] == 0.5
        assert matrix[0, 0] == math.inf  # zero background
        with pytest.raises(SemiringError):
            from_entries(MIN_PLUS, 2, 2, {(0, 0): -math.inf})
        with pytest.raises(SemiringError):
            from_entries(NATURAL, 2, 2, {(1, 1): 2**70})

    def test_from_entries_validates_indices(self):
        from repro.semiring import from_entries

        # Negative indices must not wrap to the other end of the matrix.
        with pytest.raises(SemiringError):
            from_entries(REAL, 3, 3, {(-1, 0): 5.0})
        with pytest.raises(SemiringError):
            from_entries(REAL, 3, 3, {(7, 0): 5.0})

    def test_matrices_equal_accepts_object_dtype_input(self):
        # Regression: object-dtype was the tropical storage before the
        # kernel backends; comparisons on caller-held legacy arrays crashed
        # on np.isfinite over object arrays.
        legacy = np.array([[1.0, math.inf]], dtype=object)
        assert MIN_PLUS.matrices_equal(legacy, np.array([[1.0, math.inf]]))
        assert not MIN_PLUS.matrices_equal(legacy, np.array([[2.0, math.inf]]))

    def test_diagonal_helper(self):
        from repro.semiring import diagonal

        matrix = diagonal(MIN_PLUS, np.array([[1.0], [2.0]]))
        assert matrix[0, 0] == 1.0 and matrix[1, 1] == 2.0
        assert matrix[0, 1] == math.inf
        with pytest.raises(SemiringError):
            diagonal(MIN_PLUS, MIN_PLUS.zeros(2, 2))

    def test_storage_dtype_inputs_are_still_carrier_checked(self):
        # Regression: float64 min-plus arrays holding -inf (or NaN) used to
        # skip validation because the dtype already matched, and int64
        # arrays with negatives slipped past the naturals.
        with pytest.raises(SemiringError):
            MIN_PLUS.matmul(
                np.array([[-np.inf, 1.0]]), np.array([[np.inf], [2.0]])
            )
        with pytest.raises(SemiringError):
            NATURAL.matmul(
                np.array([[-2]], dtype=np.int64), np.array([[3]], dtype=np.int64)
            )
        with pytest.raises(SemiringError):
            MIN_PLUS.sum([math.nan, 1.0])

    def test_matrices_equal_is_total_on_out_of_carrier_input(self):
        # The equality predicate compares without coercing, so invalid
        # inputs yield False/True rather than an exception.
        assert not NATURAL.matrices_equal(
            np.array([[-1]], dtype=np.int32), np.array([[1]])
        )
        assert NATURAL.matrices_equal(
            np.array([[-1]], dtype=np.int32), np.array([[-1]], dtype=np.int32)
        )

    def test_public_ops_normalize_non_storage_input_arrays(self):
        # Regression: an int32 array fed to Semiring.matmul used to
        # accumulate (and silently wrap) in int32, and raw int arrays fed to
        # boolean addition produced bitwise garbage.
        small = np.array([[2**20]], dtype=np.int32)
        assert INTEGER.matmul(small, small)[0, 0] == 2**40
        assert BOOLEAN.add_matrices(np.array([[1]]), np.array([[2]])).tolist() == [[True]]
        assert MIN_PLUS.add_matrices(np.array([[3]]), np.array([[1]]))[0, 0] == 1.0

    def test_coerce_matrix_never_aliases_the_input(self):
        for semiring, source in [
            (BOOLEAN, np.array([[True, False]])),
            (REAL, np.array([[1.0, 2.0]])),
            (NATURAL, np.array([[1, 2]], dtype=np.int64)),
            (MIN_PLUS, np.array([[1.0, 2.0]])),
        ]:
            coerced = semiring.coerce_matrix(source)
            assert coerced is not source, semiring.name
            assert not np.shares_memory(coerced, source), semiring.name

    def test_tropical_matmul_with_empty_inner_dimension_is_the_zero_matrix(self):
        # Regression: np.min over the empty inner axis raised ValueError where
        # the generic fold returned the all-zero (all-inf) matrix.
        result = MIN_PLUS.matmul(
            np.full((2, 0), math.inf), np.full((0, 3), math.inf)
        )
        assert result.shape == (2, 3)
        assert np.all(result == math.inf)

    def test_boolean_coerces_counts_to_presence(self):
        coerced = BOOLEAN.coerce_matrix(np.array([[0, 2], [7, 0]]))
        assert coerced.dtype == np.bool_
        assert coerced.tolist() == [[False, True], [True, False]]

    def test_tropical_bool_input_uses_semiring_embedding(self):
        # True -> one (0.0), False -> zero (inf): the boolean embedding, not
        # numpy's float cast of True/False to 1.0/0.0.
        coerced = MIN_PLUS.coerce_matrix(np.array([[True, False]]))
        assert coerced[0, 0] == 0.0
        assert coerced[0, 1] == math.inf

    def test_min_plus_matrix_rejects_out_of_carrier_infinity(self):
        with pytest.raises(SemiringError):
            MIN_PLUS.coerce_matrix(np.array([[1.0, -math.inf]]))

    def test_max_plus_matrix_rejects_out_of_carrier_infinity(self):
        with pytest.raises(SemiringError):
            MAX_PLUS.coerce_matrix(np.array([[1.0, math.inf]]))

    def test_tropical_matrix_rejects_nan(self):
        with pytest.raises(SemiringError):
            MIN_PLUS.coerce_matrix(np.array([[1.0, math.nan]]))


class TestAggregations:
    def test_int64_operations_never_wrap_silently(self):
        # Regression: matmul/add/hadamard/scale used to wrap past 2**63 - 1.
        # A result that truly does not fit must raise SemiringError...
        big = INTEGER.coerce_matrix(np.array([[2**40]]))
        with pytest.raises(SemiringError):
            INTEGER.matmul(big, big)
        with pytest.raises(SemiringError):
            INTEGER.scale(2**40, big)
        with pytest.raises(SemiringError):
            INTEGER.hadamard(big, big)
        near_max = INTEGER.coerce_matrix(np.array([[2**62]]))
        with pytest.raises(SemiringError):
            INTEGER.add_matrices(near_max, near_max)

    def test_int64_exact_fallback_when_bound_overestimates(self):
        # ...but when the naive bound overflows while the true result fits,
        # the exact fold fallback still returns the right int64 answer.
        left = INTEGER.coerce_matrix(np.array([[2**40, -(2**40)]]))
        right = INTEGER.coerce_matrix(np.array([[2**40], [2**40]]))
        assert INTEGER.matmul(left, right)[0, 0] == 0
        near_max = INTEGER.coerce_matrix(np.array([[2**62]]))
        almost = INTEGER.coerce_matrix(np.array([[2**62 - 1]]))
        assert INTEGER.add_matrices(near_max, almost)[0, 0] == 2**63 - 1

    def test_int64_aggregations_are_exact_beyond_int64_range(self):
        # Regression: numpy int64 reductions wrap; sum/product must keep the
        # exact Python-int fold even though matrices are stored as int64.
        assert NATURAL.sum([2**62] * 4) == 2**64
        assert INTEGER.product([2**40, 2**40]) == 2**80

    def test_sum_and_product_return_python_scalars(self):
        assert NATURAL.sum([1, 2, 3]) == 6
        assert isinstance(NATURAL.sum([1, 2, 3]), int)
        assert BOOLEAN.sum([False, True]) is True
        assert BOOLEAN.product([True, False]) is False
        assert MIN_PLUS.sum([3.0, 1.0, math.inf]) == 1.0
        assert MIN_PLUS.product([3.0, 1.0]) == 4.0
        assert REAL.sum([0.5, 0.25]) == 0.75

    def test_empty_aggregations_are_identities(self):
        assert NATURAL.sum([]) == 0
        assert NATURAL.product([]) == 1
        assert MIN_PLUS.sum([]) == math.inf
        assert BOOLEAN.sum([]) is False

    def test_generator_inputs_are_folded_once(self):
        assert NATURAL.sum(value for value in (1, 2, 3)) == 6
        assert PROVENANCE.sum(PROVENANCE.coerce(token) for token in ("p", "q")) is not None


class TestTropicalMatmulBlocking:
    def test_blocked_matmul_matches_unblocked(self):
        rng = np.random.default_rng(7)
        left = MIN_PLUS.coerce_matrix(rng.uniform(-5, 5, size=(17, 9)))
        right = MIN_PLUS.coerce_matrix(rng.uniform(-5, 5, size=(9, 13)))
        kernels = TropicalKernels(MIN_PLUS)
        blocked = TropicalKernels(MIN_PLUS)
        blocked._BLOCK_ENTRIES = 8  # force many row blocks
        assert MIN_PLUS.matrices_equal(
            kernels.matmul(left, right), blocked.matmul(left, right)
        )


class TestInt64PerRowBound:
    """The tightened (per-row / per-operation) int64 overflow guard."""

    def _no_fallback(self, monkeypatch):
        def boom(self, operation, *operands):
            raise AssertionError("expected the vectorized fast path, got the exact fallback")

        from repro.semiring.kernels import Int64Kernels

        monkeypatch.setattr(Int64Kernels, "_exact_fallback", boom)

    def test_matmul_stays_vectorized_when_rows_fit(self, monkeypatch):
        # Global bound: 4 * 2**31 * 2**31 = 2**64 overflows, but each row
        # holds a single large entry, so the per-row bound (2**62) fits.
        self._no_fallback(monkeypatch)
        big = np.diag([2**31] * 4).astype(np.int64)
        result = INTEGER.matmul(big, big)
        assert result[0, 0] == 2**62
        assert np.all(np.asarray(result)[~np.eye(4, dtype=bool)] == 0)

    def test_hadamard_stays_vectorized_when_entries_fit(self, monkeypatch):
        # max|L| * max|R| = 2**62 * 4 overflows, but the extrema live in
        # different cells, so the entrywise bound fits.
        self._no_fallback(monkeypatch)
        left = np.array([[2**62, 2], [3, 4]], dtype=np.int64)
        right = np.array([[1, 4], [4, 4]], dtype=np.int64)
        result = INTEGER.hadamard(left, right)
        assert result[0, 0] == 2**62 and result[1, 1] == 16

    def test_add_stays_vectorized_when_entries_fit(self, monkeypatch):
        self._no_fallback(monkeypatch)
        left = np.array([[2**62, 0], [0, 2**62]], dtype=np.int64)
        right = np.array([[0, 2**62], [2**62, 0]], dtype=np.int64)
        result = INTEGER.add_matrices(left, right)
        assert np.all(np.asarray(result) == 2**62)

    def test_true_overflow_still_raises(self):
        big = np.diag([2**62] * 2).astype(np.int64)
        with pytest.raises(SemiringError):
            INTEGER.matmul(big, big)
        with pytest.raises(SemiringError):
            INTEGER.add_matrices(big, big)
        with pytest.raises(SemiringError):
            INTEGER.hadamard(big, big)

    def test_per_row_results_match_exact_fold(self):
        # The refined bound must never change values, only the code path:
        # one big entry per matrix defeats the global extrema bound while
        # every actual row product still fits int64.
        rng = np.random.default_rng(23)
        left = rng.integers(-100, 100, size=(5, 5)).astype(np.int64)
        right = rng.integers(-100, 100, size=(5, 5)).astype(np.int64)
        left[0, 0] = 2**31
        right[0, 0] = 2**31
        fold = ObjectFoldKernels(INTEGER, dtype=object)
        expected = fold.matmul(left.astype(object), right.astype(object))
        assert np.array_equal(
            np.asarray(INTEGER.matmul(left, right), dtype=object), expected
        )
