"""Unit tests for the semiring matrix helpers and the registry."""

import numpy as np
import pytest

from repro.exceptions import SemiringError
from repro.semiring import (
    BOOLEAN,
    NATURAL,
    REAL,
    Semiring,
    available_semirings,
    canonical_vector,
    from_rows,
    get_semiring,
    identity,
    lift,
    matrices_equal,
    ones_matrix,
    register_semiring,
    scalar,
    scalar_value,
    zeros,
)


class TestConstructors:
    def test_zeros_and_ones(self):
        assert np.allclose(zeros(REAL, 2, 3), np.zeros((2, 3)))
        assert np.allclose(ones_matrix(REAL, 2, 2), np.ones((2, 2)))

    def test_identity(self):
        assert np.allclose(identity(REAL, 3), np.eye(3))
        boolean_identity = identity(BOOLEAN, 2)
        assert boolean_identity.dtype == np.bool_
        assert bool(boolean_identity[0, 0]) is True and bool(boolean_identity[0, 1]) is False

    def test_canonical_vector(self):
        vector = canonical_vector(REAL, 4, 2)
        assert vector.shape == (4, 1)
        assert vector[2, 0] == 1.0 and vector.sum() == 1.0

    def test_canonical_vector_out_of_range(self):
        with pytest.raises(SemiringError):
            canonical_vector(REAL, 3, 3)

    def test_scalar_roundtrip(self):
        wrapped = scalar(REAL, 2.5)
        assert wrapped.shape == (1, 1)
        assert scalar_value(wrapped) == 2.5

    def test_scalar_value_requires_1x1(self):
        with pytest.raises(SemiringError):
            scalar_value(np.zeros((2, 2)))

    def test_from_rows(self):
        matrix = from_rows(NATURAL, [[1, 2], [3, 4]])
        assert matrix[1, 0] == 3

    def test_from_rows_ragged_raises(self):
        with pytest.raises(SemiringError):
            from_rows(REAL, [[1, 2], [3]])

    def test_from_rows_empty_raises(self):
        with pytest.raises(SemiringError):
            from_rows(REAL, [])


class TestLift:
    def test_lift_scalar(self):
        assert lift(REAL, 3).shape == (1, 1)

    def test_lift_vector_becomes_column(self):
        assert lift(REAL, [1.0, 2.0, 3.0]).shape == (3, 1)

    def test_lift_matrix_keeps_shape(self):
        assert lift(REAL, np.eye(2)).shape == (2, 2)

    def test_lift_rejects_3d(self):
        with pytest.raises(SemiringError):
            lift(REAL, np.zeros((2, 2, 2)))

    def test_lift_coerces_into_semiring(self):
        lifted = lift(BOOLEAN, np.array([[0, 2], [1, 0]]))
        assert lifted.dtype == np.bool_
        assert bool(lifted[0, 1]) is True and bool(lifted[0, 0]) is False


class TestEquality:
    def test_matrices_equal(self):
        assert matrices_equal(REAL, np.eye(2), np.eye(2) + 1e-12)
        assert not matrices_equal(REAL, np.eye(2), np.zeros((2, 2)))

    def test_shape_mismatch_is_not_equal(self):
        assert not matrices_equal(REAL, np.eye(2), np.eye(3))


class TestRegistry:
    def test_builtin_semirings_registered(self):
        names = available_semirings()
        for expected in ("real", "natural", "boolean", "min_plus", "max_plus", "provenance"):
            assert expected in names

    def test_get_semiring(self):
        assert get_semiring("real") is REAL

    def test_get_unknown_semiring(self):
        with pytest.raises(SemiringError):
            get_semiring("no-such-semiring")

    def test_register_duplicate_raises(self):
        with pytest.raises(SemiringError):
            register_semiring(REAL)

    def test_register_custom_semiring(self):
        class MaxMin(Semiring):
            name = "test_max_min"

            @property
            def zero(self):
                return 0.0

            @property
            def one(self):
                return float("inf")

            def plus(self, left, right):
                return max(left, right)

            def times(self, left, right):
                return min(left, right)

            def coerce(self, value):
                return float(value)

        register_semiring(MaxMin())
        assert get_semiring("test_max_min").plus(1.0, 2.0) == 2.0
