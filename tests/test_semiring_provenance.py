"""Unit tests for the provenance polynomial semiring N[X]."""

import pytest

from repro.exceptions import SemiringError
from repro.semiring import NATURAL, REAL, Monomial, Polynomial, ProvenanceSemiring

PROV = ProvenanceSemiring()


class TestMonomial:
    def test_unit_and_variable(self):
        assert str(Monomial.unit()) == "1"
        assert str(Monomial.variable("p")) == "p"

    def test_multiplication_merges_exponents(self):
        product = Monomial.variable("p").times(Monomial.variable("p"))
        assert product == Monomial.from_mapping({"p": 2})
        assert product.degree() == 2

    def test_from_mapping_drops_zero_exponents(self):
        assert Monomial.from_mapping({"p": 0, "q": 1}) == Monomial.variable("q")


class TestPolynomial:
    def test_zero_and_one(self):
        assert str(Polynomial.zero()) == "0"
        assert str(Polynomial.one()) == "1"

    def test_addition_collects_terms(self):
        p = Polynomial.variable("p")
        assert str(p.plus(p)) == "2*p"

    def test_multiplication_distributes(self):
        p, q = Polynomial.variable("p"), Polynomial.variable("q")
        product = p.plus(q).times(p)
        assert product == p.times(p).plus(p.times(q))

    def test_degree(self):
        p, q = Polynomial.variable("p"), Polynomial.variable("q")
        assert p.times(q).plus(p).degree() == 2
        assert Polynomial.zero().degree() == 0

    def test_tokens(self):
        p, q = Polynomial.variable("p"), Polynomial.variable("q")
        assert p.times(q).tokens() == ("p", "q")

    def test_constant_rejects_negative(self):
        with pytest.raises(SemiringError):
            Polynomial.constant(-1)

    def test_evaluate_specialises_tokens(self):
        p, q = Polynomial.variable("p"), Polynomial.variable("q")
        polynomial = p.times(q).plus(p)  # p*q + p
        assert polynomial.evaluate(REAL, {"p": 2.0, "q": 3.0}) == 8.0
        assert polynomial.evaluate(NATURAL, {"p": 2, "q": 3}) == 8

    def test_evaluate_missing_token_raises(self):
        with pytest.raises(SemiringError):
            Polynomial.variable("p").evaluate(REAL, {})


class TestProvenanceSemiring:
    def test_coerce_strings_to_tokens(self):
        assert PROV.coerce("p") == Polynomial.variable("p")

    def test_coerce_integers(self):
        assert PROV.coerce(3) == Polynomial.constant(3)

    def test_plus_and_times(self):
        p, q = PROV.coerce("p"), PROV.coerce("q")
        assert str(PROV.plus(p, q)) == "p + q"
        assert str(PROV.times(p, q)) == "p*q"

    def test_homomorphism_property(self):
        """Evaluation in any semiring commutes with the N[X] operations."""
        p, q = PROV.coerce("p"), PROV.coerce("q")
        combined = PROV.plus(PROV.times(p, q), p)
        assignment = {"p": 5.0, "q": 2.0}
        direct = combined.evaluate(REAL, assignment)
        manual = 5.0 * 2.0 + 5.0
        assert direct == manual

    def test_zero_annihilates(self):
        p = PROV.coerce("p")
        assert PROV.times(p, PROV.zero) == PROV.zero

    def test_tokens_helper(self):
        assert PROV.tokens(["p", PROV.coerce("q")]) == ("p", "q")
