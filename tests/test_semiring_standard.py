"""Unit tests for the standard semirings (reals, integers, naturals, booleans)."""

import numpy as np
import pytest

from repro.exceptions import SemiringError
from repro.semiring import BOOLEAN, INTEGER, NATURAL, REAL


class TestRealField:
    def test_identities(self):
        assert REAL.zero == 0.0
        assert REAL.one == 1.0

    def test_plus_and_times(self):
        assert REAL.plus(2.0, 3.5) == 5.5
        assert REAL.times(2.0, 3.5) == 7.0

    def test_is_field_and_ring(self):
        assert REAL.is_field
        assert REAL.is_ring

    def test_divide(self):
        assert REAL.divide(6.0, 3.0) == 2.0

    def test_divide_by_zero_raises(self):
        with pytest.raises(SemiringError):
            REAL.divide(1.0, 0.0)

    def test_negate(self):
        assert REAL.negate(4.0) == -4.0

    def test_coerce_bool_and_int(self):
        assert REAL.coerce(True) == 1.0
        assert REAL.coerce(7) == 7.0

    def test_coerce_rejects_strings(self):
        with pytest.raises(SemiringError):
            REAL.coerce("not a number")

    def test_close_to_uses_relative_tolerance(self):
        assert REAL.close_to(1.0, 1.0 + 1e-12)
        assert not REAL.close_to(1.0, 1.1)

    def test_matrix_operations_use_numpy(self):
        left = np.array([[1.0, 2.0], [3.0, 4.0]])
        right = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert np.allclose(REAL.matmul(left, right), left @ right)
        assert np.allclose(REAL.add_matrices(left, right), left + right)
        assert np.allclose(REAL.hadamard(left, right), left * right)
        assert np.allclose(REAL.scale(2.0, left), 2 * left)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(SemiringError):
            REAL.matmul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_matrices_equal_tolerance(self):
        left = np.eye(2)
        right = np.eye(2) + 1e-12
        assert REAL.matrices_equal(left, right)


class TestIntegerRing:
    def test_ring_structure(self):
        assert INTEGER.is_ring
        assert not INTEGER.is_field
        assert INTEGER.negate(5) == -5

    def test_division_not_supported(self):
        with pytest.raises(SemiringError):
            INTEGER.divide(4, 2)

    def test_coerce_integral_float(self):
        assert INTEGER.coerce(3.0) == 3

    def test_coerce_rejects_fractions(self):
        with pytest.raises(SemiringError):
            INTEGER.coerce(3.5)


class TestNaturalSemiring:
    def test_identities_and_operations(self):
        assert NATURAL.zero == 0
        assert NATURAL.one == 1
        assert NATURAL.plus(2, 3) == 5
        assert NATURAL.times(2, 3) == 6

    def test_rejects_negative(self):
        with pytest.raises(SemiringError):
            NATURAL.coerce(-1)

    def test_no_additive_inverse(self):
        with pytest.raises(SemiringError):
            NATURAL.negate(1)

    def test_sum_and_product_folds(self):
        assert NATURAL.sum([1, 2, 3]) == 6
        assert NATURAL.product([1, 2, 3]) == 6

    def test_from_int(self):
        assert NATURAL.from_int(7) == 7


class TestBooleanSemiring:
    def test_operations_are_or_and(self):
        assert BOOLEAN.plus(True, False) is True
        assert BOOLEAN.plus(False, False) is False
        assert BOOLEAN.times(True, False) is False
        assert BOOLEAN.times(True, True) is True

    def test_coerce_numbers(self):
        assert BOOLEAN.coerce(5) is True
        assert BOOLEAN.coerce(0.0) is False

    def test_all_numeric_semirings_coerce_numpy_bools(self):
        # Regression: np.bool_ values (e.g. comparison results on
        # primitive-dtype matrices) were rejected by the int-like semirings.
        assert NATURAL.coerce(np.bool_(True)) == 1
        assert INTEGER.coerce(np.bool_(True)) == 1
        assert INTEGER.coerce(np.bool_(False)) == 0
        assert REAL.coerce(np.bool_(True)) == 1.0

    def test_matrix_multiplication_is_reachability(self):
        adjacency = BOOLEAN.coerce_matrix(np.array([[0, 1], [0, 0]]))
        squared = BOOLEAN.matmul(adjacency, adjacency)
        assert squared[0, 1] is False or squared[0, 1] == False  # noqa: E712

    def test_is_zero(self):
        assert BOOLEAN.is_zero(False)
        assert not BOOLEAN.is_zero(True)


class TestGenericHelpers:
    def test_from_int_fallback_via_repeated_addition(self):
        assert BOOLEAN.from_int(3) is True
        assert BOOLEAN.from_int(0) is False

    def test_equality_of_semiring_objects(self):
        assert REAL == REAL
        assert REAL != NATURAL
        assert hash(REAL) == hash(REAL)

    def test_zeros_and_ones_shapes(self, any_semiring):
        zeros = any_semiring.zeros(2, 3)
        ones = any_semiring.ones(3, 2)
        assert zeros.shape == (2, 3)
        assert ones.shape == (3, 2)
        assert all(any_semiring.is_zero(value) for value in zeros.ravel())

    def test_identity_annihilation(self, any_semiring):
        value = any_semiring.from_int(2)
        assert any_semiring.equal(
            any_semiring.times(value, any_semiring.zero), any_semiring.zero
        )
        assert any_semiring.equal(any_semiring.plus(value, any_semiring.zero), value)
        assert any_semiring.equal(any_semiring.times(value, any_semiring.one), value)
