"""Unit tests for the tropical (min-plus) and arctic (max-plus) semirings."""

import math

import numpy as np
import pytest

from repro.exceptions import SemiringError
from repro.semiring import MAX_PLUS, MIN_PLUS


class TestMinPlus:
    def test_identities(self):
        assert MIN_PLUS.zero == math.inf
        assert MIN_PLUS.one == 0.0

    def test_operations(self):
        assert MIN_PLUS.plus(3.0, 5.0) == 3.0
        assert MIN_PLUS.times(3.0, 5.0) == 8.0

    def test_zero_annihilates(self):
        assert MIN_PLUS.times(math.inf, 7.0) == math.inf

    def test_matrix_power_computes_shortest_paths(self):
        # Weighted graph: 0 -> 1 (cost 1), 1 -> 2 (cost 2), 0 -> 2 (cost 5).
        inf = math.inf
        weights = np.array(
            [[inf, 1.0, 5.0], [inf, inf, 2.0], [inf, inf, inf]], dtype=object
        )
        weights = MIN_PLUS.coerce_matrix(weights)
        two_hops = MIN_PLUS.matmul(weights, weights)
        assert two_hops[0, 2] == 3.0  # the two-edge path is cheaper than the direct edge

    def test_coerce_rejects_strings(self):
        with pytest.raises(SemiringError):
            MIN_PLUS.coerce("x")

    def test_coerce_rejects_out_of_carrier_infinity(self):
        # Regression: -inf is not in R u {+inf}; accepting it used to let
        # ``times`` silently swallow it into the annihilator +inf.
        with pytest.raises(SemiringError):
            MIN_PLUS.coerce(-math.inf)

    def test_coerce_rejects_nan(self):
        with pytest.raises(SemiringError):
            MIN_PLUS.coerce(math.nan)

    def test_times_only_annihilates_on_own_zero(self):
        # Regression: times(-inf, x) used to return +inf because any infinity
        # was treated as the annihilator.
        assert MIN_PLUS.times(-math.inf, 5.0) == -math.inf
        assert MIN_PLUS.times(5.0, -math.inf) == -math.inf
        assert MIN_PLUS.times(math.inf, -math.inf) == math.inf

    def test_close_to_handles_infinities(self):
        assert MIN_PLUS.close_to(math.inf, math.inf)
        assert not MIN_PLUS.close_to(math.inf, 3.0)

    def test_from_int(self):
        assert MIN_PLUS.from_int(0) == math.inf
        assert MIN_PLUS.from_int(3) == 0.0


class TestMaxPlus:
    def test_identities(self):
        assert MAX_PLUS.zero == -math.inf
        assert MAX_PLUS.one == 0.0

    def test_operations(self):
        assert MAX_PLUS.plus(3.0, 5.0) == 5.0
        assert MAX_PLUS.times(3.0, 5.0) == 8.0

    def test_zero_annihilates(self):
        assert MAX_PLUS.times(-math.inf, 7.0) == -math.inf

    def test_longest_path_semantics(self):
        ninf = -math.inf
        weights = MAX_PLUS.coerce_matrix(
            np.array([[ninf, 1.0, 1.0], [ninf, ninf, 4.0], [ninf, ninf, ninf]], dtype=object)
        )
        two_hops = MAX_PLUS.matmul(weights, weights)
        assert two_hops[0, 2] == 5.0

    def test_semiring_axioms_spotcheck(self):
        a, b, c = 1.0, 2.0, 3.0
        left = MAX_PLUS.times(a, MAX_PLUS.plus(b, c))
        right = MAX_PLUS.plus(MAX_PLUS.times(a, b), MAX_PLUS.times(a, c))
        assert left == right

    def test_coerce_rejects_out_of_carrier_infinity(self):
        # Mirror of the min-plus regression: +inf is not in R u {-inf}.
        with pytest.raises(SemiringError):
            MAX_PLUS.coerce(math.inf)

    def test_coerce_rejects_nan(self):
        with pytest.raises(SemiringError):
            MAX_PLUS.coerce(math.nan)

    def test_times_only_annihilates_on_own_zero(self):
        assert MAX_PLUS.times(math.inf, 5.0) == math.inf
        assert MAX_PLUS.times(5.0, math.inf) == math.inf
        assert MAX_PLUS.times(-math.inf, math.inf) == -math.inf
