"""Tests for the concurrent query service and the thread-safety hardening.

Covers four concerns:

* **engine correctness** — results delivered through the engine are
  bitwise-equal to sequential :func:`repro.matlang.evaluator.evaluate` on
  every registered semiring, across mixed-schema request streams, for
  adaptive and pinned backends, with errors isolated to their own futures
  (a poisoned request never fails its batch neighbours);
* **scheduling machinery** — the request queue's ordering, backpressure
  and close semantics; the coalescing policy's validation; the telemetry
  snapshot's internal consistency;
* **concurrency properties** — N threads hammering one engine with mixed
  schemas get exactly the sequential answers, and the shared caches under
  them (the module-level plan cache, the stack cache) keep consistent
  counters with no lost updates;
* **lifecycle** — shutdown drains in-flight work, rejects later
  submissions through the future (never by raising at the call site), and
  the context manager form is equivalent.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import SemiringError, TypingError
from repro.experiments.harness import ServedWorkload
from repro.matlang.builder import ssum, var
from repro.matlang.compiler import (
    clear_plan_cache,
    compile_expression,
    plan_cache_info,
)
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.matlang.ir import StackCache
from repro.semiring import BOOLEAN, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL, REAL
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.service import CoalescingPolicy, Engine, QueryFuture, RequestQueue
from repro.service.batching import QueryRequest, coalesce

try:
    import scipy.sparse  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    HAVE_SCIPY = False

ALL_SEMIRINGS = [REAL, NATURAL, INTEGER, BOOLEAN, MIN_PLUS, MAX_PLUS, PROVENANCE]


def _matrix_for(semiring, size, seed):
    rng = np.random.default_rng(seed)
    if semiring.name == "boolean":
        return rng.random((size, size)) < 0.4
    if semiring.name == "natural":
        return rng.integers(0, 5, (size, size))
    if semiring.name == "integer":
        return rng.integers(-4, 5, (size, size))
    if semiring.name in ("min_plus", "max_plus"):
        return np.round(rng.random((size, size)) * 9, 3)
    if semiring.name == "provenance":
        matrix = np.empty((size, size), dtype=object)
        for i in range(size):
            for j in range(size):
                matrix[i, j] = (
                    Polynomial.variable(f"x{seed}_{i}_{j}") if rng.random() < 0.5 else 0
                )
        return matrix
    return rng.standard_normal((size, size))


def _instance_for(semiring, size, seed):
    return Instance.from_matrices(
        {"A": _matrix_for(semiring, size, seed)}, semiring=semiring
    )


def _entrywise_equal(left, right):
    if left.shape != right.shape:
        return False
    if left.dtype == object or right.dtype == object:
        return all(left[index] == right[index] for index in np.ndindex(left.shape))
    return bool(np.array_equal(left, right))


def _sum_workload():
    return ssum("_v", var("A") @ var("_v"))


def _quadratic_workload():
    A, v = var("A"), var("_v")
    return ssum("_v", v.T @ A @ v) * (var("A") @ var("A"))


# ----------------------------------------------------------------------
# Engine correctness
# ----------------------------------------------------------------------
class TestEngineResults:
    def test_single_submission_matches_evaluate(self):
        instance = _instance_for(REAL, 6, 0)
        expression = _sum_workload()
        with Engine() as engine:
            result = engine.submit(expression, instance).result(30)
        assert np.array_equal(result, evaluate(expression, instance))

    def test_mixed_schema_stream_matches_sequential(self):
        expression = _sum_workload()
        instances = [
            _instance_for((REAL, MIN_PLUS, BOOLEAN)[seed % 3], (5, 7, 9)[seed % 3], seed)
            for seed in range(45)
        ]
        with Engine() as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            results = [future.result(30) for future in futures]
            snapshot = engine.stats()
        for instance, result in zip(instances, results):
            assert np.array_equal(result, evaluate(expression, instance))
        # 45 requests over 3 (plan, semiring, dims) groups must coalesce.
        assert snapshot.dispatches < len(instances)
        assert snapshot.coalesce_ratio > 1.0

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_bitwise_equal_per_semiring(self, semiring):
        expression = _quadratic_workload()
        count = 6 if semiring.name == "provenance" else 16
        size = 3 if semiring.name == "provenance" else 6
        instances = [_instance_for(semiring, size, seed) for seed in range(count)]
        sequential = [evaluate(expression, instance) for instance in instances]
        with Engine() as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            results = [future.result(60) for future in futures]
        for expected, actual in zip(sequential, results):
            assert _entrywise_equal(actual, expected), semiring.name

    def test_evaluate_convenience_wrapper(self):
        instance = _instance_for(NATURAL, 4, 1)
        expression = _sum_workload()
        with Engine() as engine:
            assert np.array_equal(
                engine.evaluate(expression, instance), evaluate(expression, instance)
            )

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
    def test_sparse_selected_requests_fall_back_per_instance(self):
        from repro.stdlib import shortest_path_matrix

        expression = shortest_path_matrix("A")
        dense = np.zeros((80, 80))
        rng = np.random.default_rng(3)
        mask = rng.random((80, 80)) < 0.03
        dense[mask] = 1.0
        instance = Instance.from_matrices({"A": dense.astype(bool)}, semiring=BOOLEAN)
        with Engine() as engine:
            result = engine.submit(expression, instance).result(60)
            snapshot = engine.stats()
        assert np.array_equal(result, evaluate(expression, instance))
        assert snapshot.fallback_requests == 1
        assert snapshot.batched_requests == 0

    def test_pinned_dense_backend_batches(self):
        expression = _sum_workload()
        instances = [_instance_for(REAL, 5, seed) for seed in range(8)]
        with Engine(backend="dense") as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            results = [future.result(30) for future in futures]
            snapshot = engine.stats()
        for instance, result in zip(instances, results):
            assert np.array_equal(result, evaluate(expression, instance))
        assert snapshot.batched_requests == len(instances)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy is required for the sparse backend")
    def test_pinned_sparse_backend_is_honoured(self):
        expression = var("A") @ var("A")
        instances = [_instance_for(BOOLEAN, 6, seed) for seed in range(4)]
        with Engine(backend="sparse") as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            results = [future.result(30) for future in futures]
            snapshot = engine.stats()
        for instance, result in zip(instances, results):
            assert np.array_equal(result, evaluate(expression, instance))
        assert snapshot.fallback_requests == len(instances)


class TestEngineErrors:
    def test_typing_error_resolves_the_future(self):
        instance = _instance_for(REAL, 4, 0)
        with Engine() as engine:
            future = engine.submit(var("NoSuchVariable"), instance)
            error = future.exception(30)
        assert isinstance(error, TypingError)

    def test_error_is_isolated_from_batch_neighbours(self):
        # Both requests share plan / semiring / dims, so they coalesce into
        # one batch; the overflowing instance must fail alone.
        expression = var("A") @ var("A")
        good = Instance.from_matrices(
            {"A": np.full((4, 4), 3, dtype=np.int64)}, semiring=NATURAL
        )
        poisoned = Instance.from_matrices(
            {"A": np.full((4, 4), 2**32, dtype=np.int64)}, semiring=NATURAL
        )
        with Engine() as engine:
            futures = engine.submit_many([(expression, good), (expression, poisoned)])
            assert np.array_equal(futures[0].result(30), evaluate(expression, good))
            assert isinstance(futures[1].exception(30), SemiringError)
            snapshot = engine.stats()
        assert snapshot.completed == 1
        assert snapshot.failed == 1

    def test_result_reraises_the_request_error(self):
        instance = _instance_for(REAL, 4, 0)
        with Engine() as engine:
            future = engine.submit(var("Missing"), instance)
            with pytest.raises(TypingError):
                future.result(30)


class TestEngineLifecycle:
    def test_shutdown_drains_pending_work(self):
        expression = _sum_workload()
        instances = [_instance_for(REAL, 5, seed) for seed in range(20)]
        engine = Engine()
        futures = engine.submit_many((expression, inst) for inst in instances)
        engine.shutdown(wait=True)
        assert all(future.done() for future in futures)
        for instance, future in zip(instances, futures):
            assert np.array_equal(future.result(0), evaluate(expression, instance))

    def test_submit_after_shutdown_rejects_through_the_future(self):
        engine = Engine()
        engine.shutdown(wait=True)
        future = engine.submit(_sum_workload(), _instance_for(REAL, 4, 0))
        assert isinstance(future.exception(5), RuntimeError)

    def test_shutdown_is_idempotent(self):
        engine = Engine()
        engine.shutdown(wait=True)
        engine.shutdown(wait=True)


class TestTelemetry:
    def test_snapshot_consistency(self):
        expression = _sum_workload()
        instances = [_instance_for(REAL, 5, seed) for seed in range(32)]
        with Engine() as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            [future.result(30) for future in futures]
            snapshot = engine.stats()
        assert snapshot.submitted == len(instances)
        assert snapshot.completed + snapshot.failed == snapshot.submitted
        assert snapshot.queue_depth == 0
        assert snapshot.batched_requests + snapshot.fallback_requests == snapshot.submitted
        assert snapshot.dispatches >= 1
        assert snapshot.coalesce_ratio >= 1.0
        assert snapshot.throughput > 0
        assert snapshot.latency_p50 is not None
        assert snapshot.latency_p95 is not None
        assert snapshot.latency_p95 >= snapshot.latency_p50
        assert "coalesce" in snapshot.render()

    def test_stack_cache_info_exposed(self):
        expression = _sum_workload()
        instances = [_instance_for(REAL, 5, seed) for seed in range(8)]
        with Engine() as engine:
            for _ in range(2):
                futures = engine.submit_many((expression, inst) for inst in instances)
                [future.result(30) for future in futures]
            info = engine.stack_cache_info()
        assert info.hits + info.misses > 0


# ----------------------------------------------------------------------
# Scheduling machinery
# ----------------------------------------------------------------------
class TestCoalescingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoalescingPolicy(max_delay=-0.1)
        with pytest.raises(ValueError):
            CoalescingPolicy(max_batch=0)
        with pytest.raises(ValueError):
            CoalescingPolicy(max_pending=0)

    def test_zero_delay_engine_still_correct(self):
        expression = _sum_workload()
        instances = [_instance_for(REAL, 5, seed) for seed in range(12)]
        with Engine(policy=CoalescingPolicy(max_delay=0.0)) as engine:
            futures = engine.submit_many((expression, inst) for inst in instances)
            for instance, future in zip(instances, futures):
                assert np.array_equal(future.result(30), evaluate(expression, instance))


class _FakePlan:
    pass


def _fake_request(plan, instance):
    return QueryRequest(
        plan=plan,
        instance=instance,
        future=QueryFuture(threading.Condition()),
        submitted_at=time.perf_counter(),
    )


class TestRequestQueue:
    def test_fifo_order_and_sequencing(self):
        queue = RequestQueue(CoalescingPolicy(max_delay=0.0))
        plan = _FakePlan()
        instance = _instance_for(REAL, 3, 0)
        requests = [_fake_request(plan, instance) for _ in range(5)]
        assert queue.put_many(requests) == 5
        drained = queue.drain()
        assert [request.sequence for request in drained] == [0, 1, 2, 3, 4]

    def test_backpressure_releases_on_drain(self):
        queue = RequestQueue(CoalescingPolicy(max_delay=0.0, max_pending=2))
        plan = _FakePlan()
        instance = _instance_for(REAL, 3, 0)
        queue.put(_fake_request(plan, instance))
        queue.put(_fake_request(plan, instance))
        unblocked = threading.Event()

        def blocked_put():
            queue.put(_fake_request(plan, instance))
            unblocked.set()

        thread = threading.Thread(target=blocked_put, daemon=True)
        thread.start()
        assert not unblocked.wait(0.05), "put must block at max_pending"
        assert len(queue.drain()) == 2
        assert unblocked.wait(5), "draining must release the blocked put"
        thread.join(5)
        queue.close()

    def test_close_drains_remainder_then_signals_termination(self):
        queue = RequestQueue(CoalescingPolicy(max_delay=0.0))
        plan = _FakePlan()
        instance = _instance_for(REAL, 3, 0)
        queue.put(_fake_request(plan, instance))
        queue.close()
        assert len(queue.drain()) == 1
        assert queue.drain() == []
        with pytest.raises(RuntimeError):
            queue.put(_fake_request(plan, instance))

    def test_put_many_after_close_reports_rejected_suffix(self):
        queue = RequestQueue(CoalescingPolicy(max_delay=0.0))
        queue.close()
        plan = _FakePlan()
        instance = _instance_for(REAL, 3, 0)
        assert queue.put_many([_fake_request(plan, instance)]) == 0

    def test_coalesce_groups_by_plan_and_signature(self):
        plan_a, plan_b = _FakePlan(), _FakePlan()
        small = _instance_for(REAL, 3, 0)
        large = _instance_for(REAL, 5, 0)
        requests = [
            _fake_request(plan_a, small),
            _fake_request(plan_b, small),
            _fake_request(plan_a, small),
            _fake_request(plan_a, large),
        ]
        groups = coalesce(requests)
        assert [len(group) for group in groups] == [2, 1, 1]
        assert groups[0].requests[0] is requests[0]
        assert groups[0].requests[1] is requests[2]


class TestQueryFuture:
    def test_timeout(self):
        future = QueryFuture(threading.Condition())
        with pytest.raises(TimeoutError):
            future.result(timeout=0.01)

    def test_single_resolution(self):
        future = QueryFuture(threading.Condition())
        assert future._finish(1, None)
        assert not future._finish(2, None)
        assert future.result(0) == 1


# ----------------------------------------------------------------------
# Concurrency properties
# ----------------------------------------------------------------------
class TestConcurrencyProperties:
    THREADS = 8
    REQUESTS_PER_THREAD = 30

    def test_threaded_mixed_streams_match_sequential(self):
        """N threads hammer one engine; every answer is bitwise-sequential."""
        expressions = [_sum_workload(), _quadratic_workload()]
        semirings = [REAL, NATURAL, BOOLEAN, MIN_PLUS]
        failures = []
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id, engine):
            rng_offset = worker_id * 1000
            stream = []
            for index in range(self.REQUESTS_PER_THREAD):
                expression = expressions[(worker_id + index) % len(expressions)]
                semiring = semirings[index % len(semirings)]
                size = (4, 5, 6)[index % 3]
                stream.append(
                    (expression, _instance_for(semiring, size, rng_offset + index))
                )
            barrier.wait(timeout=30)
            futures = [engine.submit(expr, inst) for expr, inst in stream]
            for (expression, instance), future in zip(stream, futures):
                try:
                    actual = future.result(60)
                    expected = evaluate(expression, instance)
                    if not np.array_equal(actual, expected):
                        failures.append((worker_id, "mismatch"))
                except Exception as error:  # pragma: no cover - diagnostic
                    failures.append((worker_id, repr(error)))

        with Engine() as engine:
            threads = [
                threading.Thread(target=worker, args=(worker_id, engine), daemon=True)
                for worker_id in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            snapshot = engine.stats()
        assert not failures, failures
        total = self.THREADS * self.REQUESTS_PER_THREAD
        assert snapshot.submitted == total
        assert snapshot.completed == total
        assert snapshot.failed == 0
        assert snapshot.queue_depth == 0

    def test_plan_cache_counters_are_consistent_under_threads(self):
        """hits + misses == compile calls, regardless of interleaving."""
        clear_plan_cache()
        distinct = 6
        repeats = 25
        schema = _instance_for(REAL, 4, 0).schema
        expressions = []
        chain = var("A")
        for _ in range(distinct):
            chain = chain @ var("A")
            expressions.append(chain)
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def worker():
            try:
                barrier.wait(timeout=30)
                for repeat in range(repeats):
                    for expression in expressions:
                        compile_expression(expression, schema)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(repr(error))

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, errors
        info = plan_cache_info()
        total_calls = self.THREADS * repeats * distinct
        assert info.hits + info.misses == total_calls, (
            "lost cache-counter updates under concurrency"
        )
        # Every distinct key missed at least once; duplicated lowering on a
        # racy first miss is allowed, but bounded by the thread count.
        assert distinct <= info.misses <= distinct * self.THREADS
        assert info.size >= distinct

    def test_stack_cache_counters_are_consistent_under_threads(self):
        cache = StackCache(capacity=16)
        lookups_per_thread = 200
        errors = []
        barrier = threading.Barrier(self.THREADS)
        payload = np.zeros((4, 4))

        def worker(worker_id):
            try:
                barrier.wait(timeout=30)
                rng = np.random.default_rng(worker_id)
                instances = (object(), object())
                for index in range(lookups_per_thread):
                    name = f"V{rng.integers(0, 8)}"
                    token = (id(instances[0]), id(instances[1]))
                    if cache.lookup(name, token, instances) is None:
                        cache.store(name, token, instances, payload)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(repr(error))

        threads = [
            threading.Thread(target=worker, args=(worker_id,), daemon=True)
            for worker_id in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, errors
        info = cache.info()
        assert info.hits + info.misses == self.THREADS * lookups_per_thread, (
            "lost stack-cache counter updates under concurrency"
        )
        assert info.size <= 16

    def test_concurrent_submitters_and_closers_never_strand_futures(self):
        """Shutdown racing submissions resolves every future, one way or another."""
        expression = _sum_workload()
        instances = [_instance_for(REAL, 4, seed) for seed in range(10)]
        for _ in range(5):
            engine = Engine(policy=CoalescingPolicy(max_delay=0.001))
            futures = []
            collected = threading.Lock()

            def submitter():
                for instance in instances:
                    future = engine.submit(expression, instance)
                    with collected:
                        futures.append(future)

            threads = [threading.Thread(target=submitter, daemon=True) for _ in range(3)]
            for thread in threads:
                thread.start()
            engine.shutdown(wait=True)
            for thread in threads:
                thread.join(30)
            # Late submissions may have been rejected; every future resolves.
            for future in futures:
                error = future.exception(10)
                assert error is None or isinstance(error, RuntimeError)


# ----------------------------------------------------------------------
# The harness hook
# ----------------------------------------------------------------------
class TestServedWorkload:
    def test_replay_matches_sequential(self):
        expression = _sum_workload()
        instances = [
            _instance_for((REAL, MIN_PLUS)[seed % 2], (5, 6)[seed % 2], seed)
            for seed in range(20)
        ]
        requests = [(expression, instance) for instance in instances]
        with ServedWorkload() as served:
            results = served.replay(requests, timeout=60)
            snapshot = served.stats()
        for instance, result in zip(instances, results):
            assert np.array_equal(result, evaluate(expression, instance))
        assert snapshot.completed == len(instances)
        assert snapshot.coalesce_ratio > 1.0
