"""Tests for repro.stdlib.aggregates."""

import numpy as np

from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import MIN_PLUS, NATURAL
from repro.stdlib.aggregates import (
    column_sums,
    diagonal_product,
    entry,
    row_sums,
    total_sum,
    trace,
)
from repro.stdlib.order import e_min, min_plus


class TestTrace:
    def test_trace_matches_numpy(self, square_instance, square_matrix):
        assert np.isclose(evaluate(trace("A"), square_instance)[0, 0], np.trace(square_matrix))

    def test_trace_over_naturals(self):
        matrix = np.array([[1, 2], [3, 4]])
        instance = Instance.from_matrices({"A": matrix}, semiring=NATURAL)
        assert evaluate(trace("A"), instance)[0, 0] == 5

    def test_trace_over_min_plus_is_min_diagonal(self):
        matrix = np.array([[3.0, 0.0], [0.0, 7.0]], dtype=object)
        instance = Instance.from_matrices({"A": matrix}, semiring=MIN_PLUS)
        assert evaluate(trace("A"), instance)[0, 0] == 3.0


class TestDiagonalProduct:
    def test_matches_numpy_product(self, square_instance, square_matrix):
        expected = float(np.prod(np.diag(square_matrix)))
        assert np.isclose(evaluate(diagonal_product("A"), square_instance)[0, 0], expected)

    def test_value_can_be_exponential_in_dimension(self):
        """Example 6.6: DP escapes sum-MATLANG because its values grow too fast."""
        dimension = 10
        instance = Instance.from_matrices({"A": 2.0 * np.eye(dimension)})
        assert evaluate(diagonal_product("A"), instance)[0, 0] == 2.0**dimension


class TestSums:
    def test_row_and_column_sums(self, square_instance, square_matrix):
        rows = np.asarray(evaluate(row_sums("A"), square_instance), float).ravel()
        cols = np.asarray(evaluate(column_sums("A"), square_instance), float).ravel()
        assert np.allclose(rows, square_matrix.sum(axis=1))
        assert np.allclose(cols, square_matrix.sum(axis=0))

    def test_total_sum(self, square_instance, square_matrix):
        assert np.isclose(evaluate(total_sum("A"), square_instance)[0, 0], square_matrix.sum())

    def test_entry_access(self, square_instance, square_matrix):
        value = evaluate(entry("A", e_min(), min_plus(2)), square_instance)[0, 0]
        assert value == square_matrix[0, 2]
