"""Tests for repro.stdlib.basic: Examples 3.1 and 3.2 (redundancy of ones / diag)."""

import numpy as np
import pytest

from repro.matlang.ast import Diag, OneVector
from repro.matlang.builder import var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import BOOLEAN, NATURAL
from repro.stdlib.basic import (
    diag_via_for,
    identity_like,
    ones_like,
    ones_matrix_like,
    ones_via_for,
    scalar_entry,
)
from repro.stdlib.order import e_min, e_max


class TestPrimitives:
    def test_ones_like(self, square_instance):
        assert np.allclose(evaluate(ones_like("A"), square_instance), np.ones((4, 1)))

    def test_identity_like(self, square_instance):
        assert np.allclose(evaluate(identity_like("A"), square_instance), np.eye(4))

    def test_ones_matrix_like(self, square_instance):
        assert np.allclose(evaluate(ones_matrix_like("A"), square_instance), np.ones((4, 4)))

    def test_scalar_entry(self, square_instance, square_matrix):
        entry = scalar_entry("A", e_min(), e_max())
        assert np.isclose(evaluate(entry, square_instance)[0, 0], square_matrix[0, -1])


class TestExample31:
    """1(e) is redundant in for-MATLANG."""

    @pytest.mark.parametrize("dimension", [1, 2, 3, 5, 8])
    def test_ones_via_for_equals_primitive(self, dimension):
        instance = Instance.from_matrices({"A": np.eye(dimension)})
        via_for = evaluate(ones_via_for(), instance)
        primitive = evaluate(OneVector(var("A")), instance)
        assert np.allclose(via_for, primitive)

    def test_ones_via_for_over_other_semirings(self):
        instance = Instance.from_matrices({"A": np.zeros((3, 3))}, semiring=NATURAL)
        result = evaluate(ones_via_for(), instance)
        assert [value for value in result.ravel()] == [1, 1, 1]


class TestExample32:
    """diag(e) is redundant in for-MATLANG."""

    @pytest.mark.parametrize("dimension", [1, 2, 4, 6])
    def test_diag_via_for_equals_primitive(self, dimension, rng):
        vector = rng.uniform(-1, 1, size=dimension)
        instance = Instance.from_matrices({"u": vector, "A": np.eye(dimension)})
        via_for = evaluate(diag_via_for("u"), instance)
        primitive = evaluate(Diag(var("u")), instance)
        assert np.allclose(via_for, primitive)

    def test_diag_via_for_boolean(self):
        instance = Instance.from_matrices(
            {"u": np.array([1, 0, 1]), "A": np.zeros((3, 3))}, semiring=BOOLEAN
        )
        via_for = evaluate(diag_via_for("u"), instance)
        primitive = evaluate(Diag(var("u")), instance)
        assert all(via_for[i, j] == primitive[i, j] for i in range(3) for j in range(3))
