"""Tests for graph queries: Examples 3.3 / 3.5 and Section 6.3."""

import numpy as np
import networkx as nx
import pytest

from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import BOOLEAN
from repro.stdlib.graphs import (
    four_clique_count,
    has_four_clique,
    k_clique_count,
    reachability_from,
    transitive_closure_floyd_warshall,
    transitive_closure_indicator,
    transitive_closure_product,
    triangle_count,
)
from repro.stdlib.order import e_min
from repro.experiments.workloads import (
    cycle_graph,
    path_graph,
    planted_clique_graph,
    random_digraph,
    random_undirected_graph,
    reachability_closure,
)


def closure_via_networkx(adjacency: np.ndarray) -> np.ndarray:
    graph = nx.from_numpy_array(adjacency, create_using=nx.DiGraph)
    closure = nx.transitive_closure(graph, reflexive=False)
    return nx.to_numpy_array(closure, nodelist=sorted(graph.nodes()))


class TestTransitiveClosure:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_floyd_warshall_indicator_matches_networkx(self, seed):
        adjacency = random_digraph(5, probability=0.35, seed=seed)
        instance = Instance.from_matrices({"A": adjacency})
        result = np.asarray(evaluate(transitive_closure_indicator("A"), instance), float)
        assert np.allclose(result, closure_via_networkx(adjacency))

    def test_floyd_warshall_on_path(self, path_instance):
        result = np.asarray(
            evaluate(transitive_closure_indicator("A"), path_instance), float
        )
        assert np.allclose(result, np.triu(np.ones((4, 4)), k=1))

    def test_floyd_warshall_over_boolean_semiring(self):
        adjacency = random_digraph(5, probability=0.3, seed=7)
        instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        result = evaluate(transitive_closure_floyd_warshall("A"), instance)
        expected = closure_via_networkx(adjacency)
        assert all(
            bool(result[i, j]) == bool(expected[i, j]) for i in range(5) for j in range(5)
        )

    @pytest.mark.parametrize("seed", [3, 4])
    def test_product_closure_is_reflexive_closure(self, seed):
        adjacency = random_digraph(5, probability=0.3, seed=seed)
        instance = Instance.from_matrices({"A": adjacency})
        result = np.asarray(evaluate(transitive_closure_product("A"), instance), float)
        expected = np.clip(closure_via_networkx(adjacency) + np.eye(5), 0, 1)
        assert np.allclose(result, expected)

    def test_two_closure_variants_agree_off_diagonal(self):
        adjacency = random_digraph(6, probability=0.25, seed=11)
        instance = Instance.from_matrices({"A": adjacency})
        fw = np.asarray(evaluate(transitive_closure_indicator("A"), instance), float)
        product = np.asarray(evaluate(transitive_closure_product("A"), instance), float)
        off_diagonal = ~np.eye(6, dtype=bool)
        assert np.allclose(fw[off_diagonal], product[off_diagonal])

    def test_reachability_from_source(self):
        adjacency = path_graph(4)
        instance = Instance.from_matrices({"A": adjacency})
        reachable = np.asarray(
            evaluate(reachability_from(e_min(), "A"), instance), float
        ).ravel()
        assert np.allclose(reachable, [1.0, 1.0, 1.0, 1.0])

    def test_reachability_on_cycle(self):
        adjacency = cycle_graph(3)
        instance = Instance.from_matrices({"A": adjacency})
        reachable = np.asarray(
            evaluate(reachability_from(e_min(), "A"), instance), float
        ).ravel()
        assert np.allclose(reachable, [1.0, 1.0, 1.0])

    def test_workload_reference_closure_matches_networkx(self):
        adjacency = random_digraph(6, probability=0.3, seed=5)
        assert np.allclose(reachability_closure(adjacency), closure_via_networkx(adjacency))


class TestCliques:
    def test_four_clique_count_on_complete_graph(self):
        adjacency = np.ones((4, 4)) - np.eye(4)
        instance = Instance.from_matrices({"A": adjacency})
        # Each 4-clique is counted 4! = 24 times (ordered tuples).
        assert evaluate(four_clique_count("A"), instance)[0, 0] == 24.0

    def test_k5_has_five_four_cliques(self):
        adjacency = np.ones((5, 5)) - np.eye(5)
        instance = Instance.from_matrices({"A": adjacency})
        assert evaluate(four_clique_count("A"), instance)[0, 0] == 5 * 24.0

    def test_has_four_clique_detects_planted_clique(self):
        adjacency, _ = planted_clique_graph(8, clique_size=4, probability=0.05, seed=3)
        instance = Instance.from_matrices({"A": adjacency})
        assert evaluate(has_four_clique("A"), instance)[0, 0] == 1.0

    def test_no_four_clique_in_sparse_graph(self):
        adjacency = path_graph(6) + path_graph(6).T
        instance = Instance.from_matrices({"A": adjacency})
        assert evaluate(has_four_clique("A"), instance)[0, 0] == 0.0

    def test_triangle_count_matches_networkx(self):
        adjacency = random_undirected_graph(6, probability=0.5, seed=9)
        instance = Instance.from_matrices({"A": adjacency})
        counted = evaluate(triangle_count("A"), instance)[0, 0] / 6.0
        graph = nx.from_numpy_array(adjacency)
        expected = sum(nx.triangles(graph).values()) / 3.0
        assert counted == expected

    def test_k_clique_generalisation(self):
        adjacency = np.ones((5, 5)) - np.eye(5)
        instance = Instance.from_matrices({"A": adjacency})
        # K5 contains C(5, 2) = 10 edges, each counted twice as an ordered pair.
        assert evaluate(k_clique_count("A", 2), instance)[0, 0] == 20.0

    def test_k_clique_requires_positive_k(self):
        with pytest.raises(ValueError):
            k_clique_count("A", 0)

    def test_four_clique_is_sum_matlang(self):
        from repro.matlang.fragments import Fragment, minimal_fragment

        assert minimal_fragment(four_clique_count("A")) == Fragment.SUM_MATLANG


class TestShortestPaths:
    def test_min_plus_all_pairs_shortest_paths(self):
        from repro.semiring import MIN_PLUS
        from repro.stdlib.graphs import shortest_path_matrix

        inf = np.inf
        # 0 -> 1 (cost 1), 1 -> 2 (cost 2), 0 -> 2 (cost 5), 2 unreachable from 1's side back.
        weights = np.array(
            [[inf, 1.0, 5.0], [inf, inf, 2.0], [inf, inf, inf]]
        )
        instance = Instance.from_matrices({"A": weights}, semiring=MIN_PLUS)
        distances = evaluate(shortest_path_matrix("A"), instance)
        assert distances[0, 0] == 0.0  # free self-loop
        assert distances[0, 1] == 1.0
        assert distances[0, 2] == 3.0  # via vertex 1, cheaper than the direct edge
        assert distances[1, 0] == inf  # unreachable

    def test_same_expression_over_booleans_is_reachability(self):
        from repro.stdlib.graphs import shortest_path_matrix

        adjacency = random_digraph(6, probability=0.3, seed=11)
        instance = Instance.from_matrices({"A": adjacency}, semiring=BOOLEAN)
        reachable = evaluate(shortest_path_matrix("A"), instance)
        expected = reachability_closure(adjacency) + np.eye(6)
        assert np.array_equal(np.asarray(reachable, dtype=float) != 0, expected != 0)
