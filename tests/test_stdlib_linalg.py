"""Tests for LU / PLU / Csanky constructions (Section 4, Appendix C)."""

import numpy as np
import pytest

from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.stdlib.linalg import (
    characteristic_coefficients,
    csanky_determinant,
    csanky_inverse,
    lower_triangular_inverse,
    lu_lower,
    lu_lower_inverse,
    lu_upper,
    matrix_power,
    matrix_power_fixed,
    plu_transform,
    plu_upper,
    power_sum,
    power_trace_vector,
    solve_lower_triangular,
    upper_triangular_inverse,
)
from repro.stdlib.order import min_plus
from repro.experiments.workloads import (
    random_invertible_matrix,
    random_lower_triangular,
    random_lu_factorizable_matrix,
    random_pivot_requiring_matrix,
)


def instance_for(matrix: np.ndarray) -> Instance:
    # Declare the type explicitly so that 1 x 1 inputs are still treated as
    # (alpha, alpha) matrices with D(alpha) = 1 rather than as scalars.
    from repro.matlang.schema import Schema

    schema = Schema({"A": ("alpha", "alpha")})
    return Instance(schema, {"alpha": matrix.shape[0]}, {"A": matrix})


class TestPowers:
    def test_fixed_power(self, square_instance, square_matrix):
        assert np.allclose(
            evaluate(matrix_power_fixed("A", 3), square_instance),
            np.linalg.matrix_power(square_matrix, 3),
        )

    def test_fixed_power_zero_is_identity(self, square_instance):
        assert np.allclose(evaluate(matrix_power_fixed("A", 0), square_instance), np.eye(4))

    def test_fixed_power_rejects_negative(self):
        with pytest.raises(ValueError):
            matrix_power_fixed("A", -1)

    @pytest.mark.parametrize("exponent", [0, 1, 2, 3])
    def test_indexed_power(self, square_instance, square_matrix, exponent):
        expression = matrix_power("A", min_plus(exponent))
        assert np.allclose(
            evaluate(expression, square_instance),
            np.linalg.matrix_power(square_matrix, exponent + 1),
        )

    def test_power_sum(self, square_instance, square_matrix):
        expected = sum(
            np.linalg.matrix_power(square_matrix, k) for k in range(0, 5)
        )
        assert np.allclose(evaluate(power_sum("A"), square_instance), expected)

    def test_power_trace_vector(self, square_instance, square_matrix):
        traces = np.asarray(evaluate(power_trace_vector("A"), square_instance), float).ravel()
        expected = [np.trace(np.linalg.matrix_power(square_matrix, k)) for k in range(1, 5)]
        assert np.allclose(traces, expected)


class TestTriangularInversion:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_lower_triangular_inverse(self, dimension):
        matrix = random_lower_triangular(dimension, seed=dimension)
        result = evaluate(lower_triangular_inverse("A"), instance_for(matrix))
        assert np.allclose(result, np.linalg.inv(matrix), atol=1e-8)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_upper_triangular_inverse(self, dimension):
        matrix = random_lower_triangular(dimension, seed=10 + dimension).T
        result = evaluate(upper_triangular_inverse("A"), instance_for(matrix))
        assert np.allclose(result, np.linalg.inv(matrix), atol=1e-8)

    def test_solve_lower_triangular(self):
        matrix = random_lower_triangular(3, seed=5)
        rhs = np.array([1.0, 2.0, 3.0])
        instance = Instance.from_matrices({"A": matrix, "b": rhs})
        solution = evaluate(solve_lower_triangular("A", "b"), instance)
        assert np.allclose(np.asarray(solution, float).ravel(), np.linalg.solve(matrix, rhs))


class TestLUDecomposition:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_lu_factors_multiply_back(self, dimension):
        matrix = random_lu_factorizable_matrix(dimension, seed=dimension)
        instance = instance_for(matrix)
        lower = np.asarray(evaluate(lu_lower("A"), instance), float)
        upper = np.asarray(evaluate(lu_upper("A"), instance), float)
        assert np.allclose(lower @ upper, matrix, atol=1e-8)

    def test_lower_is_unit_lower_triangular(self):
        matrix = random_lu_factorizable_matrix(4, seed=7)
        lower = np.asarray(evaluate(lu_lower("A"), instance_for(matrix)), float)
        assert np.allclose(np.triu(lower, k=1), 0.0, atol=1e-9)
        assert np.allclose(np.diag(lower), 1.0)

    def test_upper_is_upper_triangular(self):
        matrix = random_lu_factorizable_matrix(4, seed=8)
        upper = np.asarray(evaluate(lu_upper("A"), instance_for(matrix)), float)
        assert np.allclose(np.tril(upper, k=-1), 0.0, atol=1e-9)

    def test_transform_reduces_matrix(self):
        matrix = random_lu_factorizable_matrix(3, seed=9)
        instance = instance_for(matrix)
        transform = np.asarray(evaluate(lu_lower_inverse("A"), instance), float)
        upper = np.asarray(evaluate(lu_upper("A"), instance), float)
        assert np.allclose(transform @ matrix, upper, atol=1e-9)

    def test_matches_scipy_on_diagonally_dominant_input(self):
        pytest.importorskip("scipy.linalg")
        matrix = random_lu_factorizable_matrix(4, seed=12)
        upper = np.asarray(evaluate(lu_upper("A"), instance_for(matrix)), float)
        # scipy uses partial pivoting, so compare the determinant magnitude
        # |det(A)| = |prod(diag(U))| instead of the factors themselves.
        assert np.isclose(
            abs(np.prod(np.diag(upper))), abs(np.linalg.det(matrix)), rtol=1e-8
        )


class TestPLUDecomposition:
    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_plu_on_pivot_requiring_matrix(self, dimension):
        matrix = random_pivot_requiring_matrix(dimension, seed=dimension)
        instance = instance_for(matrix)
        transform = np.asarray(evaluate(plu_transform("A"), instance), float)
        upper = np.asarray(evaluate(plu_upper("A"), instance), float)
        assert np.allclose(np.tril(upper, k=-1), 0.0, atol=1e-8)
        assert np.allclose(transform @ matrix, upper, atol=1e-8)

    def test_plu_transform_is_invertible(self):
        matrix = random_pivot_requiring_matrix(3, seed=21)
        transform = np.asarray(evaluate(plu_transform("A"), instance_for(matrix)), float)
        assert abs(np.linalg.det(transform)) > 1e-9

    def test_plu_also_works_without_pivoting_need(self):
        matrix = random_lu_factorizable_matrix(3, seed=22)
        instance = instance_for(matrix)
        upper = np.asarray(evaluate(plu_upper("A"), instance), float)
        assert np.allclose(np.tril(upper, k=-1), 0.0, atol=1e-9)

    def test_plu_on_singular_matrix_keeps_triangular_shape(self):
        matrix = np.array([[0.0, 1.0, 2.0], [0.0, 2.0, 4.0], [1.0, 0.0, 1.0]])
        upper = np.asarray(evaluate(plu_upper("A"), instance_for(matrix)), float)
        assert np.allclose(np.tril(upper, k=-1), 0.0, atol=1e-9)


class TestCsanky:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 4, 5])
    def test_determinant(self, dimension):
        matrix = random_invertible_matrix(dimension, seed=dimension)
        value = evaluate(csanky_determinant("A"), instance_for(matrix))[0, 0]
        assert np.isclose(value, np.linalg.det(matrix), rtol=1e-6)

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_inverse(self, dimension):
        matrix = random_invertible_matrix(dimension, seed=30 + dimension)
        inverse = np.asarray(evaluate(csanky_inverse("A"), instance_for(matrix)), float)
        assert np.allclose(inverse, np.linalg.inv(matrix), atol=1e-6)

    def test_inverse_times_matrix_is_identity(self):
        matrix = random_invertible_matrix(4, seed=40)
        inverse = np.asarray(evaluate(csanky_inverse("A"), instance_for(matrix)), float)
        assert np.allclose(inverse @ matrix, np.eye(4), atol=1e-6)

    def test_characteristic_coefficients_match_numpy(self):
        matrix = random_invertible_matrix(3, seed=41)
        coefficients = np.asarray(
            evaluate(characteristic_coefficients("A"), instance_for(matrix)), float
        ).ravel()
        expected = np.poly(matrix)[1:]  # numpy returns [1, c_1, ..., c_n]
        assert np.allclose(coefficients, expected, rtol=1e-6)

    def test_determinant_of_singular_matrix_is_zero(self):
        matrix = np.array([[1.0, 2.0], [2.0, 4.0]])
        value = evaluate(csanky_determinant("A"), instance_for(matrix))[0, 0]
        assert np.isclose(value, 0.0, atol=1e-9)

    def test_determinant_of_identity(self):
        value = evaluate(csanky_determinant("A"), instance_for(np.eye(3)))[0, 0]
        assert np.isclose(value, 1.0)

    def test_expressions_live_in_for_matlang_with_division_only(self):
        from repro.matlang.fragments import classify

        assert classify(csanky_determinant("A")).functions == ("div",)
        assert classify(csanky_inverse("A")).functions == ("div",)
