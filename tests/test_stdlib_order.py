"""Tests for the order predicates of Section 3.2 / Appendix B.1."""

import numpy as np
import pytest

from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import canonical_vector, REAL
from repro.stdlib.order import (
    e_max,
    e_min,
    get_next_matrix,
    get_prev_matrix,
    is_max,
    is_min,
    max_minus,
    min_plus,
    next_matrix,
    prev_matrix,
    s_less,
    s_less_equal,
    succ,
    succ_strict,
)


def instance_of_dimension(dimension: int) -> Instance:
    return Instance.from_matrices({"A": np.zeros((dimension, dimension))})


DIMENSIONS = [1, 2, 3, 5, 8]


class TestExtremalVectors:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_e_max_is_last_canonical_vector(self, dimension):
        instance = instance_of_dimension(dimension)
        expected = np.zeros((dimension, 1))
        expected[-1, 0] = 1.0
        assert np.allclose(evaluate(e_max(), instance), expected)

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_e_min_is_first_canonical_vector(self, dimension):
        instance = instance_of_dimension(dimension)
        expected = np.zeros((dimension, 1))
        expected[0, 0] = 1.0
        assert np.allclose(evaluate(e_min(), instance), expected)

    @pytest.mark.parametrize("offset", [0, 1, 2])
    def test_min_plus_and_max_minus(self, offset):
        instance = instance_of_dimension(5)
        plus = evaluate(min_plus(offset), instance)
        minus = evaluate(max_minus(offset), instance)
        assert plus[offset, 0] == 1.0 and plus.sum() == 1.0
        assert minus[4 - offset, 0] == 1.0 and minus.sum() == 1.0


class TestShiftMatrices:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_prev_matrix(self, dimension):
        instance = instance_of_dimension(dimension)
        prev = np.asarray(evaluate(prev_matrix(), instance), float)
        expected = np.eye(dimension, k=1)
        assert np.allclose(prev, expected)

    def test_next_matrix_is_transpose_of_prev(self):
        instance = instance_of_dimension(4)
        prev = np.asarray(evaluate(prev_matrix(), instance), float)
        nxt = np.asarray(evaluate(next_matrix(), instance), float)
        assert np.allclose(nxt, prev.T)

    def test_prev_of_first_vector_is_zero(self):
        instance = instance_of_dimension(3)
        prev = np.asarray(evaluate(prev_matrix(), instance), float)
        b1 = np.asarray(canonical_vector(REAL, 3, 0), float)
        assert np.allclose(prev @ b1, 0)

    @pytest.mark.parametrize("power", [0, 1, 2, 3])
    def test_get_prev_and_next_matrix_powers(self, power):
        instance = instance_of_dimension(4)
        index_vector = min_plus(power)
        prev_power = np.asarray(evaluate(get_prev_matrix(index_vector), instance), float)
        next_power = np.asarray(evaluate(get_next_matrix(index_vector), instance), float)
        base_prev = np.eye(4, k=1)
        base_next = np.eye(4, k=-1)
        assert np.allclose(prev_power, np.linalg.matrix_power(base_prev, power + 1))
        assert np.allclose(next_power, np.linalg.matrix_power(base_next, power + 1))


class TestOrderMatrices:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_s_less_equal(self, dimension):
        instance = instance_of_dimension(dimension)
        result = np.asarray(evaluate(s_less_equal(), instance), float)
        expected = np.triu(np.ones((dimension, dimension)))
        assert np.allclose(result, expected)

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_s_less(self, dimension):
        instance = instance_of_dimension(dimension)
        result = np.asarray(evaluate(s_less(), instance), float)
        expected = np.triu(np.ones((dimension, dimension)), k=1)
        assert np.allclose(result, expected)

    def test_order_entries_are_zero_one(self):
        instance = instance_of_dimension(6)
        result = np.asarray(evaluate(s_less_equal(), instance), float)
        assert set(np.unique(result)) <= {0.0, 1.0}


class TestPredicates:
    def test_succ_on_all_pairs(self):
        dimension = 4
        instance = instance_of_dimension(dimension)
        for i in range(dimension):
            for j in range(dimension):
                left = min_plus(i)
                right = min_plus(j)
                value = evaluate(succ(left, right), instance)[0, 0]
                strict = evaluate(succ_strict(left, right), instance)[0, 0]
                assert value == (1.0 if i <= j else 0.0)
                assert strict == (1.0 if i < j else 0.0)

    def test_min_and_max_predicates(self):
        dimension = 3
        instance = instance_of_dimension(dimension)
        for i in range(dimension):
            vector = min_plus(i)
            assert evaluate(is_min(vector), instance)[0, 0] == (1.0 if i == 0 else 0.0)
            assert evaluate(is_max(vector), instance)[0, 0] == (
                1.0 if i == dimension - 1 else 0.0
            )

    def test_order_expressions_do_not_depend_on_matrix_values(self, rng):
        noisy = Instance.from_matrices({"A": rng.uniform(-5, 5, size=(4, 4))})
        clean = instance_of_dimension(4)
        assert np.allclose(
            np.asarray(evaluate(s_less_equal(), noisy), float),
            np.asarray(evaluate(s_less_equal(), clean), float),
        )
