"""Tests for the Turing machine substrate (Appendix D.1)."""

import pytest

from repro.turing import (
    TransitionRule,
    TuringMachine,
    parity_machine,
    sum_circuit_description_machine,
    unary_copy_machine,
    unary_double_machine,
)
from repro.turing.machine import RIGHT, STAY, TuringMachineError


class TestSimulator:
    def test_copy_machine(self):
        result = unary_copy_machine().run(["1111"])
        assert result.accepted
        assert result.output == "1111"

    def test_copy_machine_empty_input(self):
        result = unary_copy_machine().run([""])
        assert result.accepted
        assert result.output == ""

    def test_copy_machine_skips_zeros(self):
        assert unary_copy_machine().run(["10101"]).output == "111"

    def test_double_machine(self):
        assert unary_double_machine().run(["111"]).output == "1" * 6

    def test_parity_machine(self):
        machine = parity_machine()
        assert machine.run(["1011"]).output == "1"
        assert machine.run(["1001"]).output == "0"
        assert machine.run([""]).output == "0"

    def test_step_count_is_linear_for_copy(self):
        machine = unary_copy_machine()
        short = machine.run(["1" * 4]).steps
        long = machine.run(["1" * 8]).steps
        assert long > short

    def test_rejecting_run(self):
        # A machine with no applicable rule halts in a non-accepting state.
        rules = [TransitionRule("q0", (None, None, None), "dead", moves=(STAY, STAY, STAY))]
        machine = TuringMachine("stuck", rules)
        result = machine.run(["1"])
        assert not result.accepted

    def test_non_halting_machine_raises(self):
        rules = [TransitionRule("q0", (None, None, None), "q0", moves=(STAY, STAY, STAY))]
        machine = TuringMachine("loop", rules)
        with pytest.raises(TuringMachineError):
            machine.run(["1"], max_steps=50)

    def test_invalid_input_alphabet(self):
        with pytest.raises(TuringMachineError):
            unary_copy_machine().run(["12"])

    def test_wrong_number_of_inputs(self):
        with pytest.raises(TuringMachineError):
            unary_copy_machine().run(["1", "1"])

    def test_output_tape_cannot_move_left(self):
        rules = [
            TransitionRule("q0", (None, None, None), "q0", moves=(RIGHT, STAY, "L")),
        ]
        machine = TuringMachine("bad_output", rules)
        with pytest.raises(TuringMachineError):
            machine.run(["1"])

    def test_rule_arity_validation(self):
        with pytest.raises(TuringMachineError):
            TuringMachine("bad", [TransitionRule("q0", (None,), "qa", moves=(STAY,))])


class TestUniformityMachine:
    def test_description_machine_outputs_unary_size(self):
        machine = sum_circuit_description_machine()
        for size in (1, 2, 5):
            assert machine.run(["1" * size]).output == "1" * size

    def test_machine_is_resettable_between_runs(self):
        machine = sum_circuit_description_machine()
        assert machine.run(["11"]).output == "11"
        assert machine.run(["1"]).output == "1"
