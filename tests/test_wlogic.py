"""Tests for weighted structures, weighted logic and the Proposition 6.7 translations."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError, FragmentError, SchemaError
from repro.matlang.builder import had, lit, ssum, var
from repro.matlang.evaluator import evaluate
from repro.matlang.instance import Instance
from repro.semiring import BOOLEAN, NATURAL
from repro.stdlib import diagonal_product, trace
from repro.wlogic import (
    Atom,
    Equals,
    Plus,
    ProdQ,
    SumQ,
    Times,
    WeightedStructure,
    evaluate_formula,
    evaluate_formula_via_matlang,
    structure_from_instance,
    structure_to_instance,
    translate_fo_matlang,
    translate_formula,
)
from repro.experiments.workloads import random_weighted_structure


def example_structure(semiring=None) -> WeightedStructure:
    kwargs = {"semiring": semiring} if semiring is not None else {}
    return WeightedStructure(
        domain=(1, 2, 3),
        arities={"E": 2, "P": 1},
        weights={
            "E": {(1, 2): 2.0, (2, 3): 3.0, (3, 3): 1.0},
            "P": {(1,): 5.0, (3,): 1.0},
        },
        **kwargs,
    )


class TestStructures:
    def test_weight_lookup_defaults_to_zero(self):
        structure = example_structure()
        assert structure.weight("E", (1, 2)) == 2.0
        assert structure.weight("E", (2, 1)) == 0.0

    def test_arity_checking(self):
        structure = example_structure()
        with pytest.raises(SchemaError):
            structure.weight("E", (1,))
        with pytest.raises(SchemaError):
            structure.set_weight("P", (1, 2), 1.0)

    def test_domain_membership_checked(self):
        with pytest.raises(SchemaError):
            WeightedStructure(domain=(1,), arities={"E": 2}, weights={"E": {(1, 5): 1.0}})

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            WeightedStructure(domain=(), arities={})

    def test_structure_instance_roundtrip(self, square_instance):
        structure = structure_from_instance(square_instance)
        instance, domain = structure_to_instance(structure)
        matrix = np.asarray(instance.matrix("V_R_A"), float)
        assert np.allclose(matrix, np.asarray(square_instance.matrix("A"), float))
        assert domain == (1, 2, 3, 4)

    def test_structure_from_instance_covers_vectors_and_scalars(self):
        instance = Instance.from_matrices({"A": np.eye(2), "u": [1.0, 2.0], "c": 7.0})
        structure = structure_from_instance(instance)
        assert structure.arity("R_u") == 1
        assert structure.arity("R_c") == 0
        assert structure.weight("R_c", ()) == 7.0


class TestSemantics:
    def test_equality_formula(self):
        structure = example_structure()
        assert evaluate_formula(Equals("x", "y"), structure, {"x": 1, "y": 1}) == 1.0
        assert evaluate_formula(Equals("x", "y"), structure, {"x": 1, "y": 2}) == 0.0

    def test_atom_formula(self):
        structure = example_structure()
        assert evaluate_formula(Atom("E", ("x", "y")), structure, {"x": 1, "y": 2}) == 2.0

    def test_missing_assignment_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_formula(Atom("P", ("x",)), example_structure())

    def test_sum_quantifier(self):
        structure = example_structure()
        total_edges = SumQ("x", SumQ("y", Atom("E", ("x", "y"))))
        assert evaluate_formula(total_edges, structure) == 6.0

    def test_product_quantifier(self):
        structure = example_structure()
        formula = ProdQ("x", Plus(Atom("P", ("x",)), Equals("x", "x")))
        assert evaluate_formula(formula, structure) == 6.0 * 1.0 * 2.0

    def test_connectives(self):
        structure = example_structure()
        formula = Plus(Atom("E", ("x", "y")), Times(Atom("P", ("x",)), Atom("P", ("y",))))
        assert evaluate_formula(formula, structure, {"x": 1, "y": 3}) == 0.0 + 5.0

    def test_free_variables_and_substitution(self):
        formula = SumQ("y", Atom("E", ("x", "y")))
        assert formula.free_variables() == ("x",)
        renamed = formula.substitute({"x": "z"})
        assert renamed.free_variables() == ("z",)

    def test_substitution_respects_binders(self):
        formula = SumQ("y", Atom("E", ("x", "y")))
        assert formula.substitute({"y": "z"}) == formula

    def test_boolean_semiring_gives_classical_fo(self):
        structure = example_structure(semiring=BOOLEAN)
        exists_edge = SumQ("x", SumQ("y", Atom("E", ("x", "y"))))
        assert evaluate_formula(exists_edge, structure) is True


class TestFOMatlangToWL:
    CASES = [
        ("trace", lambda: trace("A")),
        ("diagonal product", lambda: diagonal_product("A")),
        ("quadratic form", lambda: var("u").T @ var("A") @ var("u")),
        (
            "nested quantifiers",
            lambda: ssum(
                "x", had("y", var("x").T @ var("A") @ var("y") + var("u").T @ var("x"))
            ),
        ),
        ("total sum", lambda: ssum("x", ssum("y", var("x").T @ var("A") @ var("y")))),
    ]

    @pytest.mark.parametrize("name,factory", CASES, ids=[c[0] for c in CASES])
    def test_translation_preserves_values(self, name, factory, rng):
        matrix = rng.uniform(-1, 2, size=(3, 3))
        vector = rng.uniform(-1, 2, size=3)
        instance = Instance.from_matrices({"A": matrix, "u": vector})
        expression = factory()
        formula = translate_fo_matlang(expression, instance.schema)
        structure = structure_from_instance(instance)
        assert np.isclose(
            evaluate(expression, instance)[0, 0], evaluate_formula(formula, structure)
        )

    def test_prod_matlang_rejected(self):
        from repro.matlang.builder import prod

        instance = Instance.from_matrices({"A": np.eye(2)})
        with pytest.raises(FragmentError):
            translate_fo_matlang(
                ssum("v", var("v").T @ prod("w", var("A")) @ var("v")), instance.schema
            )

    def test_matrix_typed_expression_rejected(self):
        instance = Instance.from_matrices({"A": np.eye(2)})
        with pytest.raises(FragmentError):
            translate_fo_matlang(var("A"), instance.schema)

    def test_literal_rejected(self):
        instance = Instance.from_matrices({"A": np.eye(2)})
        with pytest.raises(FragmentError):
            translate_fo_matlang(ssum("v", lit(2)), instance.schema)


class TestWLToFOMatlang:
    def test_simple_sentences(self):
        structure = example_structure()
        sentences = [
            SumQ("x", SumQ("y", Atom("E", ("x", "y")))),
            SumQ("x", Times(Atom("P", ("x",)), Atom("P", ("x",)))),
            ProdQ("x", Plus(Atom("P", ("x",)), Equals("x", "x"))),
            SumQ("x", SumQ("y", SumQ("z", Times(Atom("E", ("x", "y")), Atom("E", ("y", "z")))))),
        ]
        for sentence in sentences:
            assert np.isclose(
                evaluate_formula(sentence, structure),
                evaluate_formula_via_matlang(sentence, structure),
            )

    def test_translated_expression_is_fo_matlang(self):
        from repro.matlang.fragments import Fragment, minimal_fragment

        sentence = ProdQ("x", SumQ("y", Atom("E", ("x", "y"))))
        expression = translate_formula(sentence, {"E": 2})
        assert minimal_fragment(expression) == Fragment.FO_MATLANG

    def test_open_formula_rejected(self):
        with pytest.raises(FragmentError):
            translate_formula(Atom("E", ("x", "y")), {"E": 2})

    def test_high_arity_rejected(self):
        with pytest.raises(FragmentError):
            translate_formula(SumQ("x", Atom("T", ("x", "x", "x"))), {"T": 3})

    @pytest.mark.parametrize("seed", range(4))
    def test_random_structures(self, seed):
        structure = random_weighted_structure(domain_size=3, seed=seed)
        sentence = SumQ(
            "x",
            Times(
                Atom("P", ("x",)),
                SumQ("y", Plus(Atom("E", ("x", "y")), Equals("x", "y"))),
            ),
        )
        assert np.isclose(
            evaluate_formula(sentence, structure),
            evaluate_formula_via_matlang(sentence, structure),
        )


class TestStorageBoundary:
    def test_structure_to_instance_rejects_weights_beyond_int64_storage(self):
        # Regression: weights used to be assigned raw into int64 arrays,
        # leaking OverflowError instead of the library's SemiringError.
        from repro.exceptions import SemiringError
        from repro.wlogic.structures import WeightedStructure, structure_to_instance

        structure = WeightedStructure(
            domain=(1, 2),
            arities={"E": 2},
            weights={"E": {(1, 2): 2**70}},
            semiring=NATURAL,
        )
        with pytest.raises(SemiringError):
            structure_to_instance(structure)
